package remote

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
)

// Pipelining errors.
var (
	// ErrNoPipelining means the peer answered the feature PING without a
	// feature word: a legacy server. The connection remains usable with
	// the serial Client.
	ErrNoPipelining = errors.New("remote: server does not support pipelined batches")
)

// DefaultReconnectAttempts bounds the redial loop after a connection
// fault when PipelineOpts.RetryMax is unset.
const DefaultReconnectAttempts = 6

// PipelineOpts tunes a PipelinedClient.
type PipelineOpts struct {
	// Window bounds the read operations in flight on the wire (default
	// 64). This is the pipeline depth: higher hides more round trips but
	// holds more completion state.
	Window int
	// WriteWindow bounds the writes in flight on the wire (default
	// Window). Writes have their own window so a backlog of write-backs
	// never starves demand reads of in-flight slots, and vice versa.
	WriteWindow int
	// MaxBatch bounds the reads coalesced into one READBATCH frame and
	// the writes coalesced into one WRITEBATCH (default 32, clamped to
	// Window).
	MaxBatch int
	// Obs, when non-nil, receives per-op latencies, doorbell batch
	// sizes, the live in-flight depth, and wire bytes. It must be set
	// here (not after construction) so the background goroutines see it.
	Obs *obs.Registry

	// Trace, when non-nil, turns on distributed tracing: the client
	// requests the FeatTrace frame extension, stamps active span
	// contexts onto outgoing tagged frames, decomposes every completed
	// op into client-queue / wire / server-queue / server-service from
	// the server's reply stamps, feeds the cards_attrib_* series (when
	// Obs is also set) and the hub's slow-op flight recorder, and emits
	// merged client+server spans for sampled ops. Nil keeps the session
	// byte-identical to a non-tracing client.
	Trace *obs.TraceHub

	// Shard labels this client's attribution series and slow-op records
	// (sharded deployments set it to the shard index); empty omits the
	// label.
	Shard string

	// NoCompact disables the compact wire tier: the client never
	// requests rdma.FeatCompact and keeps the fixed-width batch frames —
	// the bench control knob, and an escape hatch. Default (false)
	// negotiates compact framing whenever the peer offers it.
	NoCompact bool

	// Compression controls adaptive per-object compression on compact
	// sessions: "" or "auto" requests rdma.FeatCompress and lets the
	// per-DS policy decide online which objects to compress; "off"
	// never requests the feature (objects ship raw inside compact
	// frames). Ignored when the compact tier is off.
	Compression string

	// Timeout bounds negotiation and, on deadline-capable connections,
	// detects a stalled stream: no reply within Timeout while operations
	// are in flight abandons the connection. 0 disables.
	Timeout time.Duration

	// Redial reopens the transport after a connection fault. With it set
	// the client reconnects transparently: the in-flight read window is
	// replayed on the fresh connection (reads are idempotent), while
	// unacknowledged writes complete with ErrUncertainWrite — the caller
	// decides whether its writes are safe to replay. Nil keeps the
	// historical fail-stop behavior.
	Redial func() (io.ReadWriteCloser, error)

	// RetryMax bounds consecutive failed redial attempts before the
	// client fails permanently (default DefaultReconnectAttempts).
	// RetryBase/RetryCap shape the capped exponential backoff between
	// attempts (defaults 2ms / 250ms); Seed makes its jitter
	// deterministic for tests.
	RetryMax  int
	RetryBase time.Duration
	RetryCap  time.Duration
	Seed      int64
}

func (o PipelineOpts) withDefaults() PipelineOpts {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.WriteWindow <= 0 {
		o.WriteWindow = o.Window
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxBatch > o.Window {
		o.MaxBatch = o.Window
	}
	return o
}

// pipeOp is one queued or in-flight operation. Completion is delivered
// exactly once: through done when set (async reads), else through ch.
type pipeOp struct {
	write         bool
	wantEp        bool // ride the epoch-stamped verbs (FeatEpoch sessions)
	chase         bool // ride the traversal-offload verbs (FeatChase sessions)
	probe         bool // liveness ping: not workload, kept out of tracing
	ds, idx, size uint32
	epoch         uint64           // write: stamp to apply; read: stamp received
	dst           []byte           // read destination
	data          []byte           // write payload (valid until completion)
	exts          []rdma.Extent    // range write-back: dirty extents of data (nil = full object)
	creq          rdma.ChaseReq    // chase: the traversal program
	cres          rdma.ChaseResult // chase: decoded path (hop data caller-owned)
	done          func(error)
	edone         func(uint64, error)           // epoch-read completion (exclusive with done/ch)
	cdone         func(rdma.ChaseResult, error) // chase completion (exclusive with done/ch)
	ch            chan error
	start         time.Time       // set when metrics or tracing are attached
	sentAt        time.Time       // doorbell time (tracing sessions only)
	ctx           obs.SpanContext // root span context captured at enqueue
	attempts      int             // reconnect replays beyond the first attempt
}

func (op *pipeOp) complete(err error) {
	if op.cdone != nil {
		op.cdone(op.cres, err)
		return
	}
	if op.edone != nil {
		op.edone(op.epoch, err)
		return
	}
	if op.done != nil {
		op.done(err)
		return
	}
	op.ch <- err
}

// readKind partitions read-window ops into frame families that must
// never share a batch frame: plain reads, epoch reads, and chases each
// have their own request/reply shapes.
func (op *pipeOp) readKind() int {
	switch {
	case op.chase:
		return 2
	case op.wantEp:
		return 1
	}
	return 0
}

// unsupportedErr is the definitive error for an op doomed by a session
// that lacks its verb family.
func (op *pipeOp) unsupportedErr() error {
	if op.chase {
		return ErrChaseUnsupported
	}
	return ErrEpochUnsupported
}

// PipelinedClient is a farmem.Store/AsyncStore over one connection that
// keeps a bounded window of tagged requests in flight.
//
// Data path: callers enqueue operations without touching the socket. A
// flusher goroutine drains the queue, coalesces consecutive reads into
// READBATCH frames, and pushes everything through one buffered write and
// a single flush — the doorbell: one syscall rings out many verbs. A
// reader goroutine demultiplexes completions by tag, so replies may
// arrive in any order.
//
// Ordering contract: reads and writes flow through separate queues with
// separate in-flight windows; each completes in any order and the
// server may serve batches concurrently. A write is acknowledged only
// after it is applied, so issue-after-ack read-your-write ordering
// holds; callers must not read an object while their own write to it is
// still unacknowledged, and must not have two unacknowledged writes to
// the same object in flight (the farmem runtime guarantees both: reads
// of an object with an in-flight write-back are served from its staging
// buffer, and a new write-back of such an object first waits out the
// old one).
//
// Fault model: with Redial configured, a transport fault (cut, checksum
// mismatch, stalled stream) tears the connection down, replays every
// in-flight read on a fresh one under new tags, and completes in-flight
// writes with ErrUncertainWrite. The connection generation counter keeps
// the flusher, the reader, and stale failures from different
// generations honest about which connection actually failed.
type PipelinedClient struct {
	opts PipelineOpts

	mu           sync.Mutex
	conn         io.ReadWriteCloser // current connection; swapped on reconnect
	bw           *bufio.Writer      // doorbell buffer for conn
	crc          bool               // session uses checksummed framing
	wbatch       bool               // peer speaks WRITEBATCH/ACKBATCH
	epochOK      bool               // peer speaks the epoch-stamped verbs
	chaseOK      bool               // peer speaks the traversal-offload verbs
	trace        bool               // session carries the trace extension
	compact      bool               // session uses the compact bit-packed batch frames
	compress     bool               // session may ship LZ-compressed segments
	gen          uint64             // connection generation
	reconnecting bool               // a reconnect is in progress
	lastWire     time.Time          // last successful wire activity
	cond         *sync.Cond         // flusher waits for queue work / window space
	queue        []*pipeOp          // enqueued reads, not yet on the wire
	wqueue       []*pipeOp          // enqueued writes, not yet on the wire
	inflight     int                // read operations on the wire
	inflightW    int                // write operations on the wire
	nextTag      uint32
	pending      map[uint32][]*pipeOp // tag -> ops awaiting the tagged reply
	err          error                // sticky transport/close error

	rng  *rand.Rand    // backoff jitter; only the reconnect winner uses it
	stop chan struct{} // closed by fail: aborts backoff sleeps
	wg   sync.WaitGroup

	metrics *pipeMetrics
	hub     *obs.TraceHub  // immutable after construction; nil = no tracing
	shard   string         // attribution/slow-op shard label
	featReq uint32         // feature word requested on every negotiation
	attrib  *attribCache   // reader-goroutine-owned; nil without Obs+Trace
	cpolicy compressPolicy // per-DS adaptive compression state (compact tier)
}

// negotiate runs the feature exchange on a fresh connection: request
// the features in req, demand batching, and return the peer's feature
// word (the caller derives checksummed framing, WRITEBATCH support, and
// the trace extension from it). The exchange itself is always
// legacy-framed; d bounds it when > 0.
func negotiate(conn io.ReadWriteCloser, d time.Duration, req uint32) (feats uint32, err error) {
	g := guardIO(conn, d)
	err = rdma.WriteFrame(conn, rdma.PingFeatures(req))
	var resp rdma.Frame
	if err == nil {
		resp, err = rdma.ReadFrame(conn)
	}
	if err = g.finish(err); err != nil {
		return 0, fmt.Errorf("remote: feature ping: %w", err)
	}
	if resp.Op != rdma.OpOK {
		return 0, fmt.Errorf("remote: unexpected ping response %s", resp.Op)
	}
	feats, ok := rdma.DecodeFeatures(resp.Payload)
	if !ok || feats&rdma.FeatBatch == 0 {
		return 0, ErrNoPipelining
	}
	return feats, nil
}

// negotiateCRC asks the peer for checksummed framing only — no batching
// requirement, so it suits the serial client. A legacy server's empty OK
// decodes as "no features" and leaves the session on plain framing. The
// exchange itself is always legacy-framed; d bounds it when > 0.
func negotiateCRC(conn io.ReadWriteCloser, d time.Duration) (bool, error) {
	g := guardIO(conn, d)
	err := rdma.WriteFrame(conn, rdma.PingFeatures(rdma.FeatCRC))
	var resp rdma.Frame
	if err == nil {
		resp, err = rdma.ReadFrame(conn)
	}
	if err = g.finish(err); err != nil {
		return false, fmt.Errorf("remote: feature ping: %w", err)
	}
	if resp.Op != rdma.OpOK {
		return false, fmt.Errorf("remote: unexpected ping response %s", resp.Op)
	}
	feats, ok := rdma.DecodeFeatures(resp.Payload)
	return ok && feats&rdma.FeatCRC != 0, nil
}

// NewPipelined negotiates the batch feature on conn and, on success,
// returns a running pipelined client. Returns ErrNoPipelining (with conn
// still usable for a serial Client) when the peer is a legacy server.
func NewPipelined(conn io.ReadWriteCloser, opts PipelineOpts) (*PipelinedClient, error) {
	req := rdma.FeatBatch | rdma.FeatCRC | rdma.FeatWriteBatch | rdma.FeatEpoch | rdma.FeatChase
	if opts.Trace != nil {
		req |= rdma.FeatTrace
	}
	if !opts.NoCompact {
		req |= rdma.FeatCompact
		if opts.Compression != "off" {
			req |= rdma.FeatCompress
		}
	}
	feats, err := negotiate(conn, opts.Timeout, req)
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	c := &PipelinedClient{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 64<<10),
		crc:      feats&rdma.FeatCRC != 0,
		wbatch:   feats&rdma.FeatWriteBatch != 0,
		epochOK:  feats&rdma.FeatEpoch != 0,
		chaseOK:  feats&rdma.FeatChase != 0,
		trace:    opts.Trace != nil && feats&rdma.FeatTrace != 0,
		compact:  req&rdma.FeatCompact != 0 && feats&rdma.FeatCompact != 0,
		compress: req&rdma.FeatCompress != 0 && feats&rdma.FeatCompact != 0 && feats&rdma.FeatCompress != 0,
		opts:     opts.withDefaults(),
		lastWire: time.Now(),
		pending:  make(map[uint32][]*pipeOp),
		rng:      rand.New(rand.NewSource(seed)),
		stop:     make(chan struct{}),
		metrics:  newPipeMetrics(opts.Obs),
		hub:      opts.Trace,
		shard:    opts.Shard,
		featReq:  req,
	}
	if opts.Trace != nil {
		c.attrib = newAttribCache(opts.Obs, opts.Shard)
	}
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(2)
	go c.flushLoop()
	go c.readLoop()
	return c, nil
}

// DialPipelined connects to a server address and negotiates pipelining.
// When fault handling is requested (Timeout or RetryMax set) and
// opts.Redial is nil, it defaults to redialing addr.
func DialPipelined(addr string, opts PipelineOpts) (*PipelinedClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	if opts.Redial == nil && (opts.RetryMax > 0 || opts.Timeout > 0) {
		opts.Redial = redialer(addr)
	}
	c, err := NewPipelined(conn, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// redialer builds a Redial function for a TCP address. The indirection
// avoids the classic typed-nil trap: returning (*net.TCPConn)(nil) in an
// io.ReadWriteCloser interface would compare non-nil.
func redialer(addr string) func() (io.ReadWriteCloser, error) {
	return func() (io.ReadWriteCloser, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return conn, nil
	}
}

// StoreConn is the client surface shared by the serial and pipelined
// clients (it satisfies farmem.Store).
type StoreConn interface {
	ReadObj(ds, idx int, dst []byte) error
	WriteObj(ds, idx int, src []byte) error
	Ping() error
	Close() error
}

// DialConfig configures DialAutoOpts: pipeline shape plus the shared
// fault-handling knobs applied to whichever client the negotiation
// lands on.
type DialConfig struct {
	// Timeout bounds each round trip (serial) or stall detection
	// (pipelined). RetryMax / RetryBase / RetryCap / Seed shape the
	// retry and reconnect backoff; see ClientOpts and PipelineOpts.
	Timeout   time.Duration
	RetryMax  int
	RetryBase time.Duration
	RetryCap  time.Duration
	Seed      int64

	// Window/MaxBatch pass through to PipelineOpts.
	Window   int
	MaxBatch int

	Obs *obs.Registry

	// Trace/Shard pass through to PipelineOpts. The serial fallback
	// ignores them: only the pipelined client speaks the trace
	// extension.
	Trace *obs.TraceHub
	Shard string

	// NoCompact / Compression pass through to PipelineOpts: the compact
	// wire tier and its adaptive per-object compression knob. The
	// serial fallback ignores them (it never speaks the batch verbs).
	NoCompact   bool
	Compression string
}

// faultTolerant reports whether the config asks for any fault handling,
// which is what gates the default redialer.
func (c DialConfig) faultTolerant() bool { return c.Timeout > 0 || c.RetryMax > 0 }

// DialAuto connects to a server address and returns a pipelined client
// when the server supports batching, falling back to the serial client
// against legacy servers. No deadlines, no retries — the zero-config
// path.
func DialAuto(addr string) (StoreConn, error) {
	return DialAutoOpts(addr, DialConfig{})
}

// DialAutoOpts is DialAuto with fault handling: the initial dial and
// negotiation retry under the same backoff budget as later reconnects,
// so a flaky link at startup is survived too.
func DialAutoOpts(addr string, cfg DialConfig) (StoreConn, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var lastErr error
	for attempt := 0; ; attempt++ {
		sc, err := dialAutoOnce(addr, cfg)
		if err == nil {
			return sc, nil
		}
		lastErr = err
		if !cfg.faultTolerant() || attempt >= cfg.RetryMax {
			return nil, lastErr
		}
		time.Sleep(backoff(rng, cfg.RetryBase, cfg.RetryCap, attempt))
	}
}

func dialAutoOnce(addr string, cfg DialConfig) (StoreConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	popts := PipelineOpts{
		Window: cfg.Window, MaxBatch: cfg.MaxBatch, Obs: cfg.Obs,
		Trace: cfg.Trace, Shard: cfg.Shard,
		NoCompact: cfg.NoCompact, Compression: cfg.Compression,
		Timeout: cfg.Timeout, RetryMax: cfg.RetryMax,
		RetryBase: cfg.RetryBase, RetryCap: cfg.RetryCap, Seed: cfg.Seed,
	}
	if cfg.faultTolerant() {
		popts.Redial = redialer(addr)
	}
	c, err := NewPipelined(conn, popts)
	if err == nil {
		return c, nil
	}
	if errors.Is(err, ErrNoPipelining) {
		copts := ClientOpts{
			Timeout: cfg.Timeout, RetryMax: cfg.RetryMax,
			RetryBase: cfg.RetryBase, RetryCap: cfg.RetryCap, Seed: cfg.Seed,
		}
		if cfg.faultTolerant() {
			copts.Redial = redialer(addr)
		}
		sc := NewClientConnOpts(conn, copts)
		// The fallback conn stays on plain framing (the peer answered the
		// feature ping without FeatCRC), but any redial renegotiates: a
		// garbled handshake against a CRC-capable server recovers on the
		// first fresh connection.
		sc.wantCRC = cfg.faultTolerant()
		if cfg.Obs != nil {
			sc.SetObs(cfg.Obs)
		}
		return sc, nil
	}
	conn.Close()
	return nil, err
}

// enqueue hands an operation to the flusher (never blocks on the wire).
// Reads and writes queue separately so each window fills independently.
func (c *PipelinedClient) enqueue(op *pipeOp) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		op.complete(err)
		return
	}
	if c.metrics != nil || c.hub != nil {
		op.start = time.Now()
	}
	if c.hub != nil {
		// The root layer (a deref miss, a prefetcher, the write-back
		// stager) installs its span context synchronously around the call
		// that lands here; picking it up is one atomic load.
		op.ctx = c.hub.Active()
	}
	if op.write {
		c.wqueue = append(c.wqueue, op)
	} else {
		c.queue = append(c.queue, op)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// IssueRead implements farmem.AsyncStore: it starts filling dst and
// returns immediately; done is invoked exactly once (possibly on the
// reader goroutine) when dst is filled or the read failed. done must not
// block.
func (c *PipelinedClient) IssueRead(ds, idx int, dst []byte, done func(error)) {
	c.enqueue(&pipeOp{
		ds: uint32(ds), idx: uint32(idx), size: uint32(len(dst)),
		dst: dst, done: done,
	})
}

// IssueWrite implements farmem.AsyncWriteStore: it enqueues the write
// and returns immediately; done is invoked exactly once (possibly on
// the reader goroutine) when the server has acknowledged the write or
// it failed. src must stay valid and unmodified until done runs; done
// must not block. A connection fault before the ack completes the write
// with ErrUncertainWrite — the transport never silently replays a write
// that may already have been applied; the caller reissues if (as with
// full-object write-backs) the write is idempotent.
func (c *PipelinedClient) IssueWrite(ds, idx int, src []byte, done func(error)) {
	c.enqueue(&pipeOp{
		write: true, ds: uint32(ds), idx: uint32(idx),
		data: src, done: done,
	})
}

// ReadObj implements farmem.Store (issue + wait).
func (c *PipelinedClient) ReadObj(ds, idx int, dst []byte) error {
	op := &pipeOp{
		ds: uint32(ds), idx: uint32(idx), size: uint32(len(dst)),
		dst: dst, ch: make(chan error, 1),
	}
	c.enqueue(op)
	return <-op.ch
}

// WriteObj implements farmem.Store. The write rides the same pipeline
// (tagged frame) and returns once the server acknowledges it; src must
// stay unmodified until then, which the blocking call guarantees. If the
// connection fails before the ack, the error is ErrUncertainWrite: the
// transport does not know whether the server applied it and will not
// guess.
func (c *PipelinedClient) WriteObj(ds, idx int, src []byte) error {
	op := &pipeOp{
		write: true, ds: uint32(ds), idx: uint32(idx),
		data: src, ch: make(chan error, 1),
	}
	c.enqueue(op)
	return <-op.ch
}

// Ping checks liveness by round-tripping an empty read batch through the
// full pipeline — it doubles as a fence: when it returns, every
// operation enqueued before it has been issued. Probes are transport
// plumbing, not workload: they skip the slow-op recorder and the
// attribution series, which otherwise report a rootless ds0[0] "read"
// for every connection setup and breaker probe.
func (c *PipelinedClient) Ping() error {
	op := &pipeOp{probe: true, ch: make(chan error, 1)}
	c.enqueue(op)
	return <-op.ch
}

// Close fails all queued and in-flight operations with ErrClientClosed,
// closes the connection, and waits for the background goroutines. A
// reconnect in progress aborts at its next cancellation point.
func (c *PipelinedClient) Close() error {
	c.fail(ErrClientClosed)
	c.wg.Wait()
	return nil
}

// Alive reports whether the client can still serve operations — it has
// not been closed and has not failed permanently after exhausting its
// reconnect budget. A false result is terminal: callers holding a dead
// client must dial a new one (see Resilient).
func (c *PipelinedClient) Alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil
}

// fail marks the client broken permanently: completes everything
// outstanding with err, wakes the loops, aborts reconnect sleeps, and
// closes the current connection (unblocking the reader). First caller
// wins; later failures are ignored.
func (c *PipelinedClient) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	queued := append(c.queue, c.wqueue...)
	c.queue, c.wqueue = nil, nil
	pend := c.pending
	c.pending = make(map[uint32][]*pipeOp)
	c.inflight = 0
	c.inflightW = 0
	conn := c.conn
	if m := c.metrics; m != nil {
		m.inflight.Set(0)
		m.inflightWrites.Set(0)
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	close(c.stop)
	conn.Close()
	for _, op := range queued {
		op.complete(err)
	}
	for _, ops := range pend {
		for _, op := range ops {
			op.complete(err)
		}
	}
}

// connFail handles a transport fault on connection generation gen: the
// first reporter for the live generation wins and runs the reconnect;
// stale reports (an already-replaced connection) and racing reporters
// return immediately. Without a Redial the client fails permanently, as
// it did before reconnects existed.
func (c *PipelinedClient) connFail(gen uint64, cause error) {
	c.mu.Lock()
	if c.err != nil || c.gen != gen || c.reconnecting {
		c.mu.Unlock()
		return
	}
	if c.opts.Redial == nil {
		c.mu.Unlock()
		c.fail(cause)
		return
	}
	c.reconnecting = true
	// Harvest the in-flight windows. Reads are idempotent: requeue them
	// ahead of newer work, to be reissued under fresh tags (the old tags
	// died with the connection). In-flight writes may or may not have
	// been applied — complete them with ErrUncertainWrite and let the
	// caller decide. Writes still queued never touched the wire, so they
	// simply stay queued for the fresh connection.
	tags := make([]uint32, 0, len(c.pending))
	for tag := range c.pending {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	var reads, writes []*pipeOp
	for _, tag := range tags {
		for _, op := range c.pending[tag] {
			if op.write {
				writes = append(writes, op)
			} else {
				op.attempts++
				reads = append(reads, op)
			}
		}
	}
	c.pending = make(map[uint32][]*pipeOp)
	c.inflight = 0
	c.inflightW = 0
	c.queue = append(append(make([]*pipeOp, 0, len(reads)+len(c.queue)), reads...), c.queue...)
	if m := c.metrics; m != nil {
		m.inflight.Set(0)
		m.inflightWrites.Set(0)
		m.replayedReads.Add(uint64(len(reads)))
		m.uncertainWrites.Add(uint64(len(writes)))
	}
	old := c.conn
	c.mu.Unlock()

	old.Close()
	uerr := uncertain(cause)
	for _, op := range writes {
		op.complete(uerr)
	}

	retryMax := c.opts.RetryMax
	if retryMax <= 0 {
		retryMax = DefaultReconnectAttempts
	}
	lastErr := cause
	for attempt := 0; attempt < retryMax; attempt++ {
		select {
		case <-c.stop:
			return // Close/fail ran and completed everything outstanding
		case <-time.After(backoff(c.rng, c.opts.RetryBase, c.opts.RetryCap, attempt)):
		}
		nc, err := c.opts.Redial()
		if err != nil {
			lastErr = err
			continue
		}
		feats, err := negotiate(nc, c.opts.Timeout, c.featReq)
		if err != nil {
			nc.Close()
			lastErr = err
			continue
		}
		c.mu.Lock()
		if c.err != nil {
			c.mu.Unlock()
			nc.Close()
			return
		}
		c.conn = nc
		c.bw = bufio.NewWriterSize(nc, 64<<10)
		c.crc = feats&rdma.FeatCRC != 0
		c.wbatch = feats&rdma.FeatWriteBatch != 0
		c.epochOK = feats&rdma.FeatEpoch != 0
		c.chaseOK = feats&rdma.FeatChase != 0
		c.trace = c.hub != nil && feats&rdma.FeatTrace != 0
		c.compact = c.featReq&rdma.FeatCompact != 0 && feats&rdma.FeatCompact != 0
		c.compress = c.featReq&rdma.FeatCompress != 0 && feats&rdma.FeatCompact != 0 && feats&rdma.FeatCompress != 0
		c.gen++
		c.reconnecting = false
		c.lastWire = time.Now()
		if m := c.metrics; m != nil {
			m.reconnects.Inc()
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	c.fail(fmt.Errorf("remote: reconnect failed after %d attempts: %w", retryMax, lastErr))
}

// requeueOps returns ops harvested from a bad reply to the pipeline:
// reads go back to the queue head for replay, writes complete with
// ErrUncertainWrite. If the client already failed, everything completes
// with the sticky error instead.
func (c *PipelinedClient) requeueOps(ops []*pipeOp, cause error) {
	var reads, writes []*pipeOp
	for _, op := range ops {
		if op.write {
			writes = append(writes, op)
		} else {
			op.attempts++
			reads = append(reads, op)
		}
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		for _, op := range ops {
			op.complete(err)
		}
		return
	}
	c.queue = append(append(make([]*pipeOp, 0, len(reads)+len(c.queue)), reads...), c.queue...)
	if m := c.metrics; m != nil {
		m.replayedReads.Add(uint64(len(reads)))
		m.uncertainWrites.Add(uint64(len(writes)))
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	uerr := uncertain(cause)
	for _, op := range writes {
		op.complete(uerr)
	}
}

// flushable reports whether the flusher has work it can put on the wire
// right now (caller holds mu).
func (c *PipelinedClient) flushable() bool {
	return (len(c.queue) > 0 && c.inflight < c.opts.Window) ||
		(len(c.wqueue) > 0 && c.inflightW < c.opts.WriteWindow)
}

// flushLoop is the doorbell: it waits for queued work and window space,
// moves as much of both queues as fits onto the wire as tagged frames —
// reads coalesced into READBATCH, writes into WRITEBATCH (or one
// WRITETAG each against a legacy peer) — and flushes the buffered
// writer once per wakeup. It parks while a reconnect is in progress and
// resumes against the fresh connection. Frame payloads come from the
// rdma buffer pool and return to it once written.
func (c *PipelinedClient) flushLoop() {
	defer c.wg.Done()
	var reqs []rdma.ReadReq        // scratch, reused across wakeups
	var wreqs []rdma.WriteReq      // scratch, reused across wakeups
	var ereqs []rdma.WriteEpochReq // scratch, reused across wakeups
	var creqs []rdma.ChaseReq      // scratch, reused across wakeups
	var cwreqs []rdma.WriteReqC    // scratch, reused across wakeups (compact sessions)
	var cbufs [][]byte             // pooled gather/compress buffers, released after encode
	var frames []rdma.Frame        // scratch, reused across wakeups
	var doomed []*pipeOp           // epoch/chase ops against a peer without the verbs
	for {
		c.mu.Lock()
		for c.err == nil && (c.reconnecting || !c.flushable()) {
			c.cond.Wait()
		}
		if c.err != nil {
			c.mu.Unlock()
			return
		}
		gen := c.gen
		bw := c.bw
		crc := c.crc
		trace := c.trace
		compact := c.compact
		compress := c.compress
		var now time.Time
		if trace {
			now = time.Now() // doorbell timestamp shared by this wakeup's ops
		}
		frames = frames[:0]
		doomed = doomed[:0]
		space := c.opts.Window - c.inflight
		for space > 0 && len(c.queue) > 0 {
			// Coalesce the run of reads at the head of the queue. Epoch
			// reads and chases ride their own frames (the reply shapes
			// differ), so a batch never mixes kinds.
			reqs = reqs[:0]
			creqs = creqs[:0]
			var ops []*pipeOp
			replySize := 4
			for space > 0 && len(c.queue) > 0 && len(ops) < c.opts.MaxBatch {
				op := c.queue[0]
				if (op.wantEp && !c.epochOK) || (op.chase && !c.chaseOK) {
					// The session never negotiated the op's verbs (a legacy
					// peer, possibly after a reconnect): fail definitively
					// rather than send a frame the peer cannot parse.
					doomed = append(doomed, op)
					c.queue = c.queue[1:]
					continue
				}
				var seg int
				switch {
				case op.chase:
					// Charge the worst case: the reply's size is unknown
					// until the server runs the program.
					seg = chaseReplySize(op.creq)
				case op.wantEp:
					seg = epochRespHdrSize + int(op.size)
				case compact:
					// Compact reply headers are varints: charge their worst
					// case (compression only shrinks the blob region).
					seg = 12 + int(op.size)
				default:
					seg = 4 + int(op.size)
				}
				if len(ops) > 0 && (op.readKind() != ops[0].readKind() ||
					replySize+seg > rdma.MaxFrame) {
					break
				}
				replySize += seg
				if op.chase {
					creqs = append(creqs, op.creq)
				} else {
					reqs = append(reqs, rdma.ReadReq{DS: op.ds, Idx: op.idx, Size: op.size})
				}
				ops = append(ops, op)
				c.queue = c.queue[1:]
				space--
			}
			if len(ops) == 0 {
				continue // everything inspected was doomed
			}
			tag := c.tagFor(ops, false)
			var f rdma.Frame
			switch {
			case ops[0].chase:
				f = rdma.EncodeChaseBatchPooled(tag, creqs)
			case ops[0].wantEp:
				f = rdma.EncodeReadEpochBatchPooled(tag, reqs)
			case compact:
				f = rdma.EncodeReadBatchCPooled(tag, reqs)
			default:
				f = rdma.EncodeReadBatchPooled(tag, reqs)
			}
			if trace {
				stampTraceFrame(&f, ops, now)
			}
			frames = append(frames, f)
			if m := c.metrics; m != nil {
				m.batchReads.Observe(uint64(len(ops)))
			}
		}
		if len(c.queue) == 0 {
			c.queue = nil // release the drained backing array
		}
		wspace := c.opts.WriteWindow - c.inflightW
		for wspace > 0 && len(c.wqueue) > 0 {
			if !c.wbatch {
				// Legacy peer: one WRITETAG frame per write — byte-identical
				// to what such a peer has always received. Such a peer has no
				// epoch verbs either, so epoch writes fail definitively.
				op := c.wqueue[0]
				c.wqueue = c.wqueue[1:]
				wspace--
				if op.wantEp {
					doomed = append(doomed, op)
					continue
				}
				ops := []*pipeOp{op}
				tag := c.tagFor(ops, true)
				f := rdma.Frame{
					Op: rdma.OpWriteTag, Tag: tag,
					Payload: rdma.EncodeWrite(op.ds, op.idx, op.data).Payload,
				}
				if trace {
					stampTraceFrame(&f, ops, now)
				}
				frames = append(frames, f)
				continue
			}
			// Coalesce writes into one WRITEBATCH (or WRITEEPOCHBATCH —
			// never mixed), bounded by MaxBatch and the frame limit. On a
			// compact session both families ride the compact tuples
			// instead, with per-object compression and range sub-encoding;
			// against any other peer a range op falls back to its full
			// object image (op.data always carries it).
			wreqs = wreqs[:0]
			ereqs = ereqs[:0]
			cwreqs = cwreqs[:0]
			var ops []*pipeOp
			frameSize := 4
			for wspace > 0 && len(c.wqueue) > 0 && len(ops) < c.opts.MaxBatch {
				op := c.wqueue[0]
				if op.wantEp && !c.epochOK {
					doomed = append(doomed, op)
					c.wqueue = c.wqueue[1:]
					continue
				}
				var tupleBound int
				if compact {
					dataLen := len(op.data)
					if op.exts != nil {
						dataLen = 0
						for _, e := range op.exts {
							dataLen += int(e.Len)
						}
					}
					tupleBound = rdma.WriteReqCBound(dataLen, len(op.exts), op.wantEp)
				} else {
					tupleHdr := 12
					if op.wantEp {
						tupleHdr = epochTupleHdrSize
					}
					tupleBound = tupleHdr + len(op.data)
				}
				if len(ops) > 0 && (op.wantEp != ops[0].wantEp ||
					frameSize+tupleBound > rdma.MaxFrame) {
					break
				}
				frameSize += tupleBound
				switch {
				case compact:
					cwreqs = append(cwreqs, c.compactWriteReq(op, compress, &cbufs))
				case op.wantEp:
					ereqs = append(ereqs, rdma.WriteEpochReq{DS: op.ds, Idx: op.idx, Epoch: op.epoch, Data: op.data})
				default:
					wreqs = append(wreqs, rdma.WriteReq{DS: op.ds, Idx: op.idx, Data: op.data})
				}
				ops = append(ops, op)
				c.wqueue = c.wqueue[1:]
				wspace--
			}
			if len(ops) == 0 {
				continue // everything inspected was doomed
			}
			tag := c.tagFor(ops, true)
			var f rdma.Frame
			var err error
			switch {
			case compact:
				f, err = rdma.EncodeWriteBatchCPooled(tag, cwreqs, ops[0].wantEp)
				// The encoder copied every blob into the frame payload:
				// the gather/compress buffers can go home now.
				for _, b := range cbufs {
					rdma.PutBuf(b)
				}
				cbufs = cbufs[:0]
			case ops[0].wantEp:
				f, err = rdma.EncodeWriteEpochBatchPooled(tag, ereqs)
			default:
				f, err = rdma.EncodeWriteBatchPooled(tag, wreqs)
			}
			if err != nil {
				// Unreachable by construction (the loop bounds frameSize);
				// fail loudly rather than drop writes on the floor.
				c.mu.Unlock()
				c.fail(err)
				return
			}
			if trace {
				stampTraceFrame(&f, ops, now)
			}
			frames = append(frames, f)
			if m := c.metrics; m != nil {
				m.batchWrites.Observe(uint64(len(ops)))
			}
		}
		if len(c.wqueue) == 0 {
			c.wqueue = nil // release the drained backing array
		}
		if m := c.metrics; m != nil {
			m.inflight.Set(int64(c.inflight))
			m.inflightWrites.Set(int64(c.inflightW))
		}
		c.mu.Unlock()

		for _, op := range doomed {
			op.complete(op.unsupportedErr())
		}

		writeFrame := rdma.WriteFrame
		if crc {
			writeFrame = rdma.WriteFrameCRC
		}
		var werr error
		for _, f := range frames {
			if werr == nil {
				werr = writeFrame(bw, f)
			}
			if werr == nil {
				if m := c.metrics; m != nil {
					m.bytesOut.Add(f.WireSize())
					m.wire.add(f.Op, f.WireSize())
				}
			}
			rdma.PutBuf(f.Payload)
		}
		if werr == nil {
			werr = bw.Flush()
		}
		if werr != nil {
			// The ops this flush registered are harvested by connFail
			// (requeued or completed uncertain); the loop parks until the
			// fresh connection is up.
			c.connFail(gen, werr)
			continue
		}
		c.mu.Lock()
		c.lastWire = time.Now()
		c.mu.Unlock()
	}
}

// stampTraceFrame stamps an outgoing tagged frame of a FeatTrace
// session with its batch's span context and records each op's doorbell
// time. Every tagged frame of such a session carries the fixed-size
// extension — an all-zero context when nothing in the batch is traced —
// so both sides' framing stays deterministic. When the batch mixes
// traces, the first sampled op's context wins (the server can label its
// span with only one).
func stampTraceFrame(f *rdma.Frame, ops []*pipeOp, now time.Time) {
	var ctx obs.SpanContext
	for _, op := range ops {
		op.sentAt = now
		if op.ctx.Sampled && !ctx.Sampled {
			ctx = op.ctx
		}
	}
	if !ctx.Sampled {
		for _, op := range ops {
			if op.ctx.TraceID != 0 {
				ctx = op.ctx
				break
			}
		}
	}
	f.SetTraceCtx(ctx.TraceID, ctx.SpanID, ctx.Sampled)
}

// tagFor registers a batch of ops in flight under a fresh tag (caller
// holds mu; ops already popped from their queue), charging the window
// matching their direction.
func (c *PipelinedClient) tagFor(ops []*pipeOp, write bool) uint32 {
	if write {
		c.inflightW += len(ops)
	} else {
		c.inflight += len(ops)
	}
	c.nextTag++
	c.pending[c.nextTag] = ops
	return c.nextTag
}

// readLoop demultiplexes completions by tag. Any transport-level
// problem — read error, checksum mismatch, unknown tag, malformed
// batch — reports the connection generation to connFail and parks until
// reconnected (or until the client fails for good). Frame payloads are
// pooled: each is released back to the rdma buffer pool as soon as its
// contents are copied out or formatted into an error.
func (c *PipelinedClient) readLoop() {
	defer c.wg.Done()
	var segs [][]byte            // scratch, reused across frames
	var esegs []rdma.EpochSeg    // scratch, reused across frames
	var cress []rdma.ChaseResult // scratch, reused across frames
	var csegs []rdma.DataSegC    // scratch, reused across frames (compact sessions)
	var ackScratch []uint64      // ACKBATCH-C reject bitmap scratch
	for {
		c.mu.Lock()
		for c.err == nil && c.reconnecting {
			c.cond.Wait()
		}
		if c.err != nil {
			c.mu.Unlock()
			return
		}
		gen := c.gen
		conn := c.conn
		crc := c.crc
		trace := c.trace
		c.mu.Unlock()

		if d := c.opts.Timeout; d > 0 {
			if dl, ok := conn.(connDeadline); ok {
				dl.SetReadDeadline(time.Now().Add(d))
			}
		}
		f, err := rdma.ReadFramePooledOpts(conn, crc, trace)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// An idle connection hitting the read deadline is benign:
				// nothing is owed. With ops in flight and no wire activity
				// for a full Timeout, the stream is stalled — abandon it.
				// (A deadline that fired mid-frame desynchronizes the
				// stream; the next read then fails the tag or checksum
				// check and converges to the same reconnect.)
				c.mu.Lock()
				stalled := c.gen == gen && (c.inflight > 0 || c.inflightW > 0) &&
					time.Since(c.lastWire) >= c.opts.Timeout
				c.mu.Unlock()
				if !stalled {
					continue
				}
				if m := c.metrics; m != nil {
					m.timeouts.Inc()
				}
				err = fmt.Errorf("%w (no reply in %v with ops in flight)", ErrTimeout, c.opts.Timeout)
			}
			c.connFail(gen, err)
			continue
		}
		c.mu.Lock()
		c.lastWire = time.Now()
		c.mu.Unlock()
		if m := c.metrics; m != nil {
			m.bytesIn.Add(f.WireSize())
			m.wire.add(f.Op, f.WireSize())
		}
		ops, ok := c.takePending(f.Tag)
		if !ok {
			err := fmt.Errorf("remote: unknown completion tag %d (%s)", f.Tag, f.Op)
			rdma.PutBuf(f.Payload)
			c.connFail(gen, err)
			continue
		}
		var sQueueUS, sServiceUS uint32
		stamped := false
		if trace && f.HasExt {
			_, sQueueUS, sServiceUS = f.ServerStamp()
			stamped = true
		}
		switch f.Op {
		case rdma.OpDataBatch:
			var derr error
			segs, derr = rdma.DecodeDataBatchInto(f.Payload, segs)
			if derr == nil && len(segs) != len(ops) {
				derr = fmt.Errorf("remote: DATABATCH has %d segments, want %d", len(segs), len(ops))
			}
			if derr != nil {
				// Framing is untrustworthy past this point: replay these
				// reads on a fresh connection.
				rdma.PutBuf(f.Payload)
				c.requeueOps(ops, derr)
				c.connFail(gen, derr)
				continue
			}
			for i, op := range ops {
				copy(op.dst, segs[i])
				c.finishOp(op, stamped, sQueueUS, sServiceUS)
				op.complete(nil)
			}
			rdma.PutBuf(f.Payload)
		case rdma.OpDataEpochBatch:
			var derr error
			esegs, derr = rdma.DecodeDataEpochBatchInto(f.Payload, esegs)
			if derr == nil && len(esegs) != len(ops) {
				derr = fmt.Errorf("remote: DATAEPOCHBATCH has %d segments, want %d", len(esegs), len(ops))
			}
			if derr != nil {
				// Framing is untrustworthy past this point: replay these
				// reads on a fresh connection.
				rdma.PutBuf(f.Payload)
				c.requeueOps(ops, derr)
				c.connFail(gen, derr)
				continue
			}
			for i, op := range ops {
				copy(op.dst, esegs[i].Data)
				op.epoch = esegs[i].Epoch
				c.finishOp(op, stamped, sQueueUS, sServiceUS)
				op.complete(nil)
			}
			rdma.PutBuf(f.Payload)
		case rdma.OpChaseData:
			var derr error
			cress, derr = rdma.DecodeChaseDataInto(f.Payload, cress)
			if derr == nil && len(cress) != len(ops) {
				derr = fmt.Errorf("remote: CHASEDATA has %d results, want %d", len(cress), len(ops))
			}
			if derr != nil {
				// Framing is untrustworthy past this point: chases are
				// read-only, so replay them on a fresh connection.
				rdma.PutBuf(f.Payload)
				c.requeueOps(ops, derr)
				c.connFail(gen, derr)
				continue
			}
			for i, op := range ops {
				op.cres = copyChaseResult(cress[i])
				c.finishOp(op, stamped, sQueueUS, sServiceUS)
				op.complete(nil)
			}
			rdma.PutBuf(f.Payload)
		case rdma.OpDataBatchC:
			var derr error
			csegs, derr = rdma.DecodeDataBatchCInto(f.Payload, csegs[:0])
			if derr == nil && len(csegs) != len(ops) {
				derr = fmt.Errorf("remote: DATABATCH-C has %d segments, want %d", len(csegs), len(ops))
			}
			if derr == nil {
				for i := range csegs {
					if int(csegs[i].RawLen) != len(ops[i].dst) {
						derr = fmt.Errorf("remote: DATABATCH-C segment %d is %d bytes, want %d",
							i, csegs[i].RawLen, len(ops[i].dst))
						break
					}
				}
			}
			if derr != nil {
				// Framing is untrustworthy past this point: replay these
				// reads on a fresh connection.
				rdma.PutBuf(f.Payload)
				c.requeueOps(ops, derr)
				c.connFail(gen, derr)
				continue
			}
			bad := -1
			for i, op := range ops {
				seg := &csegs[i]
				switch seg.Scheme {
				case rdma.SchemeZero:
					clear(op.dst)
				case rdma.SchemeLZ:
					if lerr := rdma.LZDecompress(op.dst, seg.Data); lerr != nil {
						// Corrupt compressed block behind a valid checksum:
						// the remaining reads of this frame replay on a
						// fresh connection (the completed prefix stands —
						// reads are idempotent).
						derr, bad = lerr, i
					}
				default:
					copy(op.dst, seg.Data)
				}
				if bad >= 0 {
					break
				}
				c.finishOp(op, stamped, sQueueUS, sServiceUS)
				op.complete(nil)
			}
			rdma.PutBuf(f.Payload)
			if bad >= 0 {
				c.requeueOps(ops[bad:], derr)
				c.connFail(gen, derr)
				continue
			}
		case rdma.OpAckBatchC:
			n, rejected, any, derr := rdma.DecodeAckBatchC(f.Payload, ackScratch)
			if rejected != nil {
				ackScratch = rejected
			}
			rdma.PutBuf(f.Payload)
			if derr == nil && n != len(ops) {
				derr = fmt.Errorf("remote: ACKBATCH-C acknowledges %d writes, want %d", n, len(ops))
			}
			if derr != nil {
				// A torn ack means the batch outcome is unknowable over this
				// stream: the writes surface as uncertain for the caller to
				// reissue.
				c.requeueOps(ops, derr)
				c.connFail(gen, derr)
				continue
			}
			for i, op := range ops {
				if any && rejected[i/64]&(1<<(uint(i)%64)) != 0 {
					// The peer refused to splice onto a stale base: a
					// definitive completion, not a transport fault — the
					// replication layer marks the member divergent and
					// resyncs it with full objects.
					op.complete(ErrStaleRangeBase)
					continue
				}
				c.finishOp(op, stamped, sQueueUS, sServiceUS)
				op.complete(nil)
			}
		case rdma.OpAckBatch:
			n, derr := rdma.DecodeAckBatch(f.Payload)
			rdma.PutBuf(f.Payload)
			if derr == nil && n != len(ops) {
				derr = fmt.Errorf("remote: ACKBATCH acknowledges %d writes, want %d", n, len(ops))
			}
			if derr != nil {
				// A torn ack means the batch outcome is unknowable over this
				// stream: the writes surface as uncertain for the caller to
				// reissue.
				c.requeueOps(ops, derr)
				c.connFail(gen, derr)
				continue
			}
			for _, op := range ops {
				c.finishOp(op, stamped, sQueueUS, sServiceUS)
				op.complete(nil)
			}
		case rdma.OpAckTag:
			rdma.PutBuf(f.Payload)
			c.finishOp(ops[0], stamped, sQueueUS, sServiceUS)
			ops[0].complete(nil)
		case rdma.OpErrTag:
			// Definitive server-level rejection: the connection is fine
			// and the answer is final — never retried.
			err := fmt.Errorf("remote: server error: %s", f.Payload)
			rdma.PutBuf(f.Payload)
			c.completeAll(ops, err)
		default:
			err := fmt.Errorf("remote: unexpected frame %s in pipelined stream", f.Op)
			rdma.PutBuf(f.Payload)
			c.requeueOps(ops, err)
			c.connFail(gen, err)
			continue
		}
	}
}

// takePending removes and returns the ops registered under tag, freeing
// their window slots (a tag's ops are homogeneous: all reads or all
// writes, so one op decides which window drains).
func (c *PipelinedClient) takePending(tag uint32) ([]*pipeOp, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ops, ok := c.pending[tag]
	if !ok {
		return nil, false
	}
	delete(c.pending, tag)
	if len(ops) > 0 && ops[0].write {
		c.inflightW -= len(ops)
		if m := c.metrics; m != nil {
			m.inflightWrites.Set(int64(c.inflightW))
		}
	} else {
		c.inflight -= len(ops)
		if m := c.metrics; m != nil {
			m.inflight.Set(int64(c.inflight))
		}
	}
	c.cond.Broadcast()
	return ops, true
}

func (c *PipelinedClient) completeAll(ops []*pipeOp, err error) {
	for _, op := range ops {
		op.complete(err)
	}
}

func (c *PipelinedClient) observeOp(op *pipeOp) {
	m := c.metrics
	if m == nil || op.start.IsZero() {
		return
	}
	ns := uint64(time.Since(op.start).Nanoseconds())
	if op.write {
		m.writeNS.Observe(ns)
	} else {
		m.readNS.Observe(ns)
	}
}

// Op label values for slow-op records and merged spans.
const (
	opNameRead  = "read"
	opNameWrite = "write"
)

// finishOp accounts one successfully completed op. Beyond the latency
// histograms, on a FeatTrace session with a stamped reply it decomposes
// the op into its four clock-offset-free components —
//
//	total        = complete − enqueue
//	client_queue = doorbell − enqueue
//	rtt          = complete − doorbell
//	server busy  = queue + service        (from the server's stamp)
//	wire         = rtt − busy, clamped ≥ 0 (the residual: both directions)
//
// so client_queue + wire + server_queue + server_service == total by
// construction — then feeds the cards_attrib_* series and the slow-op
// flight recorder, and (for sampled ops) emits the merged client+server
// spans, placing the server's busy time midway through the wire
// residual (the unbiased placement without synchronized clocks). Runs
// on the reader goroutine; off the sampled path it allocates nothing.
func (c *PipelinedClient) finishOp(op *pipeOp, stamped bool, queueUS, serviceUS uint32) {
	c.observeOp(op)
	if c.hub == nil || !stamped || op.probe || op.start.IsZero() || op.sentAt.IsZero() {
		return
	}
	now := time.Now()
	totalUS := uint64(now.Sub(op.start).Microseconds())
	cqUS := uint64(op.sentAt.Sub(op.start).Microseconds())
	rttUS := uint64(now.Sub(op.sentAt).Microseconds())
	busyUS := uint64(queueUS) + uint64(serviceUS)
	var wireUS uint64
	if rttUS > busyUS {
		wireUS = rttUS - busyUS
	}
	c.attrib.observe(op.ds, cqUS, wireUS, uint64(queueUS), uint64(serviceUS))
	name := opNameRead
	if op.write {
		name = opNameWrite
	}
	var nowUS uint64
	if t := c.hub.Tracer; t != nil {
		nowUS = t.Now()
	}
	startUS := nowUS - totalUS
	if totalUS > nowUS {
		startUS = 0
	}
	c.hub.Offer(obs.SlowOp{
		TraceID: op.ctx.TraceID, SpanID: op.ctx.SpanID,
		Op: name, DS: int(op.ds), Idx: int(op.idx), Shard: c.shard,
		Attempts: op.attempts + 1, Sampled: op.ctx.Sampled,
		StartUS: startUS, TotalUS: totalUS,
		ClientQueueUS: cqUS, WireUS: wireUS,
		ServerQueueUS: uint64(queueUS), ServerServiceUS: uint64(serviceUS),
	})
	if !op.ctx.Sampled || c.hub.Tracer == nil {
		return
	}
	sentUS := nowUS - rttUS
	c.hub.Emit(obs.TraceEvent{
		TS: startUS, Dur: totalUS, Cat: "remote", Name: name,
		TID: int(op.ds), Trace: op.ctx.TraceID,
		Arg1Name: "attempts", Arg1: int64(op.attempts + 1),
		Arg2Name: "obj", Arg2: int64(op.idx),
	})
	c.hub.Emit(obs.TraceEvent{
		TS: sentUS + wireUS/2, Dur: uint64(queueUS),
		Cat: "server", Name: "queue",
		TID: int(op.ds), Trace: op.ctx.TraceID,
	})
	c.hub.Emit(obs.TraceEvent{
		TS: sentUS + wireUS/2 + uint64(queueUS), Dur: uint64(serviceUS),
		Cat: "server", Name: "service",
		TID: int(op.ds), Trace: op.ctx.TraceID,
	})
}
