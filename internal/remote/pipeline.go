package remote

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
)

// Pipelining errors.
var (
	// ErrNoPipelining means the peer answered the feature PING without a
	// feature word: a legacy server. The connection remains usable with
	// the serial Client.
	ErrNoPipelining = errors.New("remote: server does not support pipelined batches")
)

// PipelineOpts tunes a PipelinedClient.
type PipelineOpts struct {
	// Window bounds the operations in flight on the wire (default 64).
	// This is the pipeline depth: higher hides more round trips but
	// holds more completion state.
	Window int
	// MaxBatch bounds the reads coalesced into one READBATCH frame
	// (default 32, clamped to Window).
	MaxBatch int
	// Obs, when non-nil, receives per-op latencies, doorbell batch
	// sizes, the live in-flight depth, and wire bytes. It must be set
	// here (not after construction) so the background goroutines see it.
	Obs *obs.Registry
}

func (o PipelineOpts) withDefaults() PipelineOpts {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxBatch > o.Window {
		o.MaxBatch = o.Window
	}
	return o
}

// pipeOp is one queued or in-flight operation. Completion is delivered
// exactly once: through done when set (async reads), else through ch.
type pipeOp struct {
	write         bool
	ds, idx, size uint32
	dst           []byte // read destination
	data          []byte // write payload (valid until completion)
	done          func(error)
	ch            chan error
	start         time.Time // set when metrics are attached
}

func (op *pipeOp) complete(err error) {
	if op.done != nil {
		op.done(err)
		return
	}
	op.ch <- err
}

// PipelinedClient is a farmem.Store/AsyncStore over one connection that
// keeps a bounded window of tagged requests in flight.
//
// Data path: callers enqueue operations without touching the socket. A
// flusher goroutine drains the queue, coalesces consecutive reads into
// READBATCH frames, and pushes everything through one buffered write and
// a single flush — the doorbell: one syscall rings out many verbs. A
// reader goroutine demultiplexes completions by tag, so replies may
// arrive in any order.
//
// Ordering contract: operations are *issued* in enqueue order, but reads
// complete in any order and the server may serve batches concurrently.
// A write is acknowledged only after it is applied, so issue-after-ack
// read-your-write ordering holds; callers must not read an object while
// their own write to it is still unacknowledged (the farmem runtime
// never does: in-flight frames are unevictable, and its write-backs are
// synchronous).
type PipelinedClient struct {
	conn io.ReadWriteCloser
	bw   *bufio.Writer
	opts PipelineOpts

	mu       sync.Mutex
	cond     *sync.Cond // flusher waits for queue work / window space
	queue    []*pipeOp  // enqueued, not yet on the wire
	inflight int        // operations on the wire
	nextTag  uint32
	pending  map[uint32][]*pipeOp // tag -> ops awaiting the tagged reply
	err      error                // sticky transport/close error

	closeOnce sync.Once
	wg        sync.WaitGroup

	metrics *pipeMetrics
}

// NewPipelined negotiates the batch feature on conn and, on success,
// returns a running pipelined client. Returns ErrNoPipelining (with conn
// still usable for a serial Client) when the peer is a legacy server.
func NewPipelined(conn io.ReadWriteCloser, opts PipelineOpts) (*PipelinedClient, error) {
	if err := rdma.WriteFrame(conn, rdma.PingFeatures(rdma.FeatBatch)); err != nil {
		return nil, fmt.Errorf("remote: feature ping: %w", err)
	}
	resp, err := rdma.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("remote: feature ping: %w", err)
	}
	if resp.Op != rdma.OpOK {
		return nil, fmt.Errorf("remote: unexpected ping response %s", resp.Op)
	}
	feats, ok := rdma.DecodeFeatures(resp.Payload)
	if !ok || feats&rdma.FeatBatch == 0 {
		return nil, ErrNoPipelining
	}
	c := &PipelinedClient{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		opts:    opts.withDefaults(),
		pending: make(map[uint32][]*pipeOp),
		metrics: newPipeMetrics(opts.Obs),
	}
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(2)
	go c.flushLoop()
	go c.readLoop()
	return c, nil
}

// DialPipelined connects to a server address and negotiates pipelining.
func DialPipelined(addr string, opts PipelineOpts) (*PipelinedClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	c, err := NewPipelined(conn, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// StoreConn is the client surface shared by the serial and pipelined
// clients (it satisfies farmem.Store).
type StoreConn interface {
	ReadObj(ds, idx int, dst []byte) error
	WriteObj(ds, idx int, src []byte) error
	Ping() error
	Close() error
}

// DialAuto connects to a server address and returns a pipelined client
// when the server supports batching, falling back to the serial client
// against legacy servers.
func DialAuto(addr string) (StoreConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	c, err := NewPipelined(conn, PipelineOpts{})
	if err == nil {
		return c, nil
	}
	if errors.Is(err, ErrNoPipelining) {
		return NewClientConn(conn), nil
	}
	conn.Close()
	return nil, err
}

// enqueue hands an operation to the flusher (never blocks on the wire).
func (c *PipelinedClient) enqueue(op *pipeOp) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		op.complete(err)
		return
	}
	if c.metrics != nil {
		op.start = time.Now()
	}
	c.queue = append(c.queue, op)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// IssueRead implements farmem.AsyncStore: it starts filling dst and
// returns immediately; done is invoked exactly once (possibly on the
// reader goroutine) when dst is filled or the read failed. done must not
// block.
func (c *PipelinedClient) IssueRead(ds, idx int, dst []byte, done func(error)) {
	c.enqueue(&pipeOp{
		ds: uint32(ds), idx: uint32(idx), size: uint32(len(dst)),
		dst: dst, done: done,
	})
}

// ReadObj implements farmem.Store (issue + wait).
func (c *PipelinedClient) ReadObj(ds, idx int, dst []byte) error {
	op := &pipeOp{
		ds: uint32(ds), idx: uint32(idx), size: uint32(len(dst)),
		dst: dst, ch: make(chan error, 1),
	}
	c.enqueue(op)
	return <-op.ch
}

// WriteObj implements farmem.Store. The write rides the same pipeline
// (tagged frame) and returns once the server acknowledges it; src must
// stay unmodified until then, which the blocking call guarantees.
func (c *PipelinedClient) WriteObj(ds, idx int, src []byte) error {
	op := &pipeOp{
		write: true, ds: uint32(ds), idx: uint32(idx),
		data: src, ch: make(chan error, 1),
	}
	c.enqueue(op)
	return <-op.ch
}

// Ping checks liveness by round-tripping an empty read batch through the
// full pipeline — it doubles as a fence: when it returns, every
// operation enqueued before it has been issued.
func (c *PipelinedClient) Ping() error {
	return c.ReadObj(0, 0, nil)
}

// Close fails all queued and in-flight operations with ErrClientClosed,
// closes the connection, and waits for the background goroutines.
func (c *PipelinedClient) Close() error {
	c.fail(ErrClientClosed)
	c.wg.Wait()
	return nil
}

// fail marks the client broken: completes everything outstanding with
// err, wakes the flusher, and closes the connection (unblocking the
// reader). First caller wins; later transport errors are ignored.
func (c *PipelinedClient) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	queued := c.queue
	c.queue = nil
	pend := c.pending
	c.pending = make(map[uint32][]*pipeOp)
	c.inflight = 0
	if m := c.metrics; m != nil {
		m.inflight.Set(0)
	}
	c.cond.Broadcast()
	c.mu.Unlock()

	c.closeOnce.Do(func() { c.conn.Close() })
	for _, op := range queued {
		op.complete(err)
	}
	for _, ops := range pend {
		for _, op := range ops {
			op.complete(err)
		}
	}
}

// flushLoop is the doorbell: it waits for queued work and window space,
// moves as much of the queue as fits onto the wire as tagged frames —
// consecutive reads coalesced into READBATCH — and flushes the buffered
// writer once per wakeup.
func (c *PipelinedClient) flushLoop() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for c.err == nil && (len(c.queue) == 0 || c.inflight >= c.opts.Window) {
			c.cond.Wait()
		}
		if c.err != nil {
			c.mu.Unlock()
			return
		}
		space := c.opts.Window - c.inflight
		var frames []rdma.Frame
		for space > 0 && len(c.queue) > 0 {
			if op := c.queue[0]; op.write {
				tag := c.take(1)
				c.pending[tag] = []*pipeOp{op}
				frames = append(frames, rdma.Frame{
					Op: rdma.OpWriteTag, Tag: tag,
					Payload: rdma.EncodeWrite(op.ds, op.idx, op.data).Payload,
				})
				space--
				continue
			}
			// Coalesce the run of reads at the head of the queue.
			var reqs []rdma.ReadReq
			var ops []*pipeOp
			replySize := 4
			for space > 0 && len(c.queue) > 0 && !c.queue[0].write && len(ops) < c.opts.MaxBatch {
				op := c.queue[0]
				if len(ops) > 0 && replySize+4+int(op.size) > rdma.MaxFrame {
					break
				}
				replySize += 4 + int(op.size)
				reqs = append(reqs, rdma.ReadReq{DS: op.ds, Idx: op.idx, Size: op.size})
				ops = append(ops, op)
				c.queue = c.queue[1:]
				space--
			}
			tag := c.tagFor(ops)
			frames = append(frames, rdma.EncodeReadBatch(tag, reqs))
			if m := c.metrics; m != nil {
				m.batchReads.Observe(uint64(len(ops)))
			}
		}
		if len(c.queue) == 0 {
			c.queue = nil // release the drained backing array
		}
		if m := c.metrics; m != nil {
			m.inflight.Set(int64(c.inflight))
		}
		c.mu.Unlock()

		var werr error
		for _, f := range frames {
			if werr = rdma.WriteFrame(c.bw, f); werr != nil {
				break
			}
			if m := c.metrics; m != nil {
				m.bytesOut.Add(f.WireSize())
			}
		}
		if werr == nil {
			werr = c.bw.Flush()
		}
		if werr != nil {
			c.fail(werr)
			return
		}
	}
}

// take pops n write ops off the queue head (caller holds mu, n==1) and
// returns a fresh tag accounting them in flight.
func (c *PipelinedClient) take(n int) uint32 {
	c.queue = c.queue[n:]
	c.inflight += n
	c.nextTag++
	return c.nextTag
}

// tagFor registers a read batch in flight (caller holds mu; ops already
// popped) and returns its tag.
func (c *PipelinedClient) tagFor(ops []*pipeOp) uint32 {
	c.inflight += len(ops)
	c.nextTag++
	c.pending[c.nextTag] = ops
	return c.nextTag
}

// readLoop demultiplexes completions by tag.
func (c *PipelinedClient) readLoop() {
	defer c.wg.Done()
	for {
		f, err := rdma.ReadFrame(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		if m := c.metrics; m != nil {
			m.bytesIn.Add(f.WireSize())
		}
		ops, ok := c.takePending(f.Tag)
		if !ok {
			c.fail(fmt.Errorf("remote: unknown completion tag %d (%s)", f.Tag, f.Op))
			return
		}
		switch f.Op {
		case rdma.OpDataBatch:
			segs, derr := rdma.DecodeDataBatch(f.Payload)
			if derr == nil && len(segs) != len(ops) {
				derr = fmt.Errorf("remote: DATABATCH has %d segments, want %d", len(segs), len(ops))
			}
			if derr != nil {
				c.completeAll(ops, derr)
				c.fail(derr) // framing is untrustworthy past this point
				return
			}
			for i, op := range ops {
				copy(op.dst, segs[i])
				c.observeOp(op)
				op.complete(nil)
			}
		case rdma.OpAckTag:
			c.observeOp(ops[0])
			ops[0].complete(nil)
		case rdma.OpErrTag:
			c.completeAll(ops, fmt.Errorf("remote: server error: %s", f.Payload))
		default:
			err := fmt.Errorf("remote: unexpected frame %s in pipelined stream", f.Op)
			c.completeAll(ops, err)
			c.fail(err)
			return
		}
	}
}

// takePending removes and returns the ops registered under tag, freeing
// their window slots.
func (c *PipelinedClient) takePending(tag uint32) ([]*pipeOp, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ops, ok := c.pending[tag]
	if !ok {
		return nil, false
	}
	delete(c.pending, tag)
	c.inflight -= len(ops)
	if m := c.metrics; m != nil {
		m.inflight.Set(int64(c.inflight))
	}
	c.cond.Broadcast()
	return ops, true
}

func (c *PipelinedClient) completeAll(ops []*pipeOp, err error) {
	for _, op := range ops {
		op.complete(err)
	}
}

func (c *PipelinedClient) observeOp(op *pipeOp) {
	m := c.metrics
	if m == nil || op.start.IsZero() {
		return
	}
	ns := uint64(time.Since(op.start).Nanoseconds())
	if op.write {
		m.writeNS.Observe(ns)
	} else {
		m.readNS.Observe(ns)
	}
}
