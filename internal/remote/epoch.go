package remote

import (
	"errors"
	"time"

	"cards/internal/rdma"
)

// Epoch-stamped operations (the FeatEpoch extension). The replication
// layer versions whole-object images with a monotonically increasing
// epoch so a replica can tell stale state from current without byte
// comparison. The verbs ride the ordinary pipelined windows — same
// doorbell coalescing, same tag demux, same ErrUncertainWrite fault
// accounting — in their own frames, and only on sessions whose peer
// advertised rdma.FeatEpoch.

// ErrEpochUnsupported reports an epoch-stamped operation issued against
// a peer (or through a fallback client) that never negotiated
// rdma.FeatEpoch. It is definitive: retrying on the same session cannot
// succeed.
var ErrEpochUnsupported = errors.New("remote: peer does not support epoch-stamped verbs")

// Wire overhead the flusher charges per epoch op when bounding a batch
// against rdma.MaxFrame: the reply segment header of an epoch read
// (u64 epoch | u32 len) and the tuple header of an epoch write
// (u32 ds | u32 idx | u64 epoch | u32 len).
const (
	epochRespHdrSize  = 12
	epochTupleHdrSize = 20
)

// EpochStore is the synchronous epoch-stamped client surface the
// replica layer builds on.
type EpochStore interface {
	// ReadObjEpoch fills dst and returns the object's stored epoch
	// stamp (0 when absent or never epoch-stamped).
	ReadObjEpoch(ds, idx int, dst []byte) (uint64, error)
	// WriteObjEpoch stores src stamped with epoch. The server applies
	// it only when epoch is at least the stored stamp, and acknowledges
	// either way — a positive ack means "the object is at >= epoch",
	// which is exactly the idempotent contract replayed write-backs
	// need.
	WriteObjEpoch(ds, idx int, epoch uint64, src []byte) error
}

// AsyncEpochStore is the pipelined epoch-stamped surface: issue
// without blocking, complete exactly once via the callback. src must
// stay valid until done runs (the IssueWrite contract).
type AsyncEpochStore interface {
	IssueReadEpoch(ds, idx int, dst []byte, done func(epoch uint64, err error))
	IssueWriteEpoch(ds, idx int, epoch uint64, src []byte, done func(error))
}

// EpochCapable reports whether the live session negotiated the epoch
// verbs. A false result can flip true after a reconnect (and vice
// versa); callers treat it as advisory and handle ErrEpochUnsupported.
func (c *PipelinedClient) EpochCapable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil && c.epochOK
}

// IssueReadEpoch is IssueRead returning the object's stored epoch
// stamp through done.
func (c *PipelinedClient) IssueReadEpoch(ds, idx int, dst []byte, done func(uint64, error)) {
	c.enqueue(&pipeOp{
		wantEp: true, ds: uint32(ds), idx: uint32(idx), size: uint32(len(dst)),
		dst: dst, edone: done,
	})
}

// IssueWriteEpoch is IssueWrite carrying an epoch stamp; see
// EpochStore.WriteObjEpoch for the conditional-apply contract.
func (c *PipelinedClient) IssueWriteEpoch(ds, idx int, epoch uint64, src []byte, done func(error)) {
	c.enqueue(&pipeOp{
		write: true, wantEp: true, ds: uint32(ds), idx: uint32(idx),
		epoch: epoch, data: src, done: done,
	})
}

// ReadObjEpoch implements EpochStore (issue + wait).
func (c *PipelinedClient) ReadObjEpoch(ds, idx int, dst []byte) (uint64, error) {
	op := &pipeOp{
		wantEp: true, ds: uint32(ds), idx: uint32(idx), size: uint32(len(dst)),
		dst: dst, ch: make(chan error, 1),
	}
	c.enqueue(op)
	err := <-op.ch
	return op.epoch, err
}

// WriteObjEpoch implements EpochStore (issue + wait).
func (c *PipelinedClient) WriteObjEpoch(ds, idx int, epoch uint64, src []byte) error {
	op := &pipeOp{
		write: true, wantEp: true, ds: uint32(ds), idx: uint32(idx),
		epoch: epoch, data: src, ch: make(chan error, 1),
	}
	c.enqueue(op)
	return <-op.ch
}

// EpochCapable reports whether the current underlying client speaks the
// epoch verbs (false when the fallback serial client is in use, or no
// client can be dialed).
func (r *Resilient) EpochCapable() bool {
	c, err := r.client()
	if err != nil {
		return false
	}
	pc, ok := c.(*PipelinedClient)
	return ok && pc.EpochCapable()
}

// ReadObjEpoch implements EpochStore over the replaceable client.
func (r *Resilient) ReadObjEpoch(ds, idx int, dst []byte) (uint64, error) {
	c, err := r.client()
	if err != nil {
		return 0, err
	}
	pc, ok := c.(*PipelinedClient)
	if !ok {
		r.retireFallback(c)
		return 0, ErrEpochUnsupported
	}
	epoch, err := pc.ReadObjEpoch(ds, idx, dst)
	if err != nil {
		r.retire(pc)
	}
	return epoch, err
}

// WriteObjEpoch implements EpochStore over the replaceable client.
func (r *Resilient) WriteObjEpoch(ds, idx int, epoch uint64, src []byte) error {
	c, err := r.client()
	if err != nil {
		return err
	}
	pc, ok := c.(*PipelinedClient)
	if !ok {
		r.retireFallback(c)
		return ErrEpochUnsupported
	}
	if err := pc.WriteObjEpoch(ds, idx, epoch, src); err != nil {
		r.retire(pc)
		return err
	}
	return nil
}

// IssueReadEpoch implements AsyncEpochStore over the replaceable
// client.
func (r *Resilient) IssueReadEpoch(ds, idx int, dst []byte, done func(uint64, error)) {
	c, err := r.client()
	if err != nil {
		done(0, err)
		return
	}
	pc, ok := c.(*PipelinedClient)
	if !ok {
		r.retireFallback(c)
		done(0, ErrEpochUnsupported)
		return
	}
	pc.IssueReadEpoch(ds, idx, dst, func(epoch uint64, err error) {
		if err != nil {
			r.retire(pc)
		}
		done(epoch, err)
	})
}

// IssueWriteEpoch implements AsyncEpochStore over the replaceable
// client.
func (r *Resilient) IssueWriteEpoch(ds, idx int, epoch uint64, src []byte, done func(error)) {
	c, err := r.client()
	if err != nil {
		done(err)
		return
	}
	pc, ok := c.(*PipelinedClient)
	if !ok {
		r.retireFallback(c)
		done(ErrEpochUnsupported)
		return
	}
	pc.IssueWriteEpoch(ds, idx, epoch, src, func(err error) {
		if err != nil {
			r.retire(pc)
		}
		done(err)
	})
}

// serveReadEpochBatch handles one READEPOCHBATCH frame on a worker
// goroutine: gather every requested object and its stored epoch stamp
// directly into one pooled DATAEPOCHBATCH reply. The request scratch
// slice is returned for the worker to reuse.
func (s *Server) serveReadEpochBatch(j batchJob, connID int, send func(rdma.Frame) error, trace bool, scratch []rdma.ReadReq) []rdma.ReadReq {
	f := j.f
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	var startUS uint64
	if s.tracer != nil {
		startUS = s.tracer.Now()
	}
	reqs, err := rdma.DecodeReadEpochBatchInto(f.Payload, scratch)
	if err != nil {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, err.Error())
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return scratch
	}
	size := rdma.DataEpochBatchSize(reqs)
	if size > rdma.MaxFrame {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, "batch reply exceeds frame limit")
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return reqs
	}
	p := rdma.GetBuf(size)
	w := rdma.BeginDataEpochBatch(p, len(reqs))
	for _, r := range reqs {
		// The copy and the stamp come from one lock acquisition, so each
		// segment is a consistent (epoch, bytes) snapshot.
		slot := w.NextDeferred(int(r.Size))
		w.StampEpoch(s.Store.ReadEpochInto(r.DS, r.Idx, slot))
	}
	s.observeBatch(connID, len(reqs), start, startUS, reqTrace(f))
	resp := w.Frame(f.Tag)
	s.stamp(&resp, trace, j.recv, start)
	send(resp)
	rdma.PutBuf(p)
	return reqs
}

// serveWriteEpochBatch handles one WRITEEPOCHBATCH frame on a worker
// goroutine: conditionally apply every write in batch order (stale
// epochs are dropped — see ObjectStore.WriteEpoch), then acknowledge
// the whole batch with one ACKBATCH. A dropped stale write still
// counts as acknowledged: the object is at an epoch at least as new,
// which is what the sender's replay logic needs to know.
func (s *Server) serveWriteEpochBatch(j batchJob, connID int, send func(rdma.Frame) error, trace bool, scratch []rdma.WriteEpochReq) []rdma.WriteEpochReq {
	f := j.f
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	var startUS uint64
	if s.tracer != nil {
		startUS = s.tracer.Now()
	}
	s.metrics.wire.add(f.Op, f.WireSize())
	reqs, err := rdma.DecodeWriteEpochBatchInto(f.Payload, scratch)
	if err != nil {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, err.Error())
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return scratch
	}
	for _, r := range reqs {
		s.Store.WriteEpoch(r.DS, r.Idx, r.Epoch, r.Data)
	}
	s.observeWriteBatch(connID, len(reqs), start, startUS, reqTrace(f))
	resp := rdma.EncodeAckBatch(f.Tag, len(reqs))
	s.metrics.wire.add(resp.Op, resp.WireSize())
	s.stamp(&resp, trace, j.recv, start)
	send(resp)
	return reqs
}
