package remote

import (
	"testing"

	"cards/internal/obs"
)

func benchServerRamp(b *testing.B) string {
	b.Helper()
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	buf := make([]byte, benchObjSize)
	for j := range buf {
		buf[j] = byte(j)
	}
	srv.Store.Write(0, 0, buf)
	return addr
}

// BenchmarkWireTierReadTCP pins the CPU cost of the compact wire tier
// against the legacy batch encoding on a clean loopback link, ramp
// (non-zero, LZ-compressible) payloads: "compact" must stay within
// noise of "legacy" — the packed headers and the reserved-header
// DATABATCH-C fast path are meant to be free when compression is off —
// while "compact-lz" shows what the adaptive compressor costs when the
// link is not the bottleneck (the wire sweep shows the inverse trade).
func BenchmarkWireTierReadTCP(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts PipelineOpts
	}{
		{"legacy", PipelineOpts{Window: 32, NoCompact: true}},
		{"compact", PipelineOpts{Window: 32, Compression: "off"}},
		{"compact-lz", PipelineOpts{Window: 32}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			addr := benchServerRamp(b)
			reg := obs.NewRegistry()
			o := tc.opts
			o.Obs = reg
			cl, err := DialPipelined(addr, o)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			benchPipelinedRead(b, cl)
			snap := reg.Snapshot()
			if h := snap.Histogram(MetricClientBatchSize); h.Count > 0 {
				b.ReportMetric(float64(h.Sum)/float64(h.Count), "reads/batch")
			}
			var wire uint64
			for k, v := range snap.Counters {
				if len(k) >= len(MetricWireBytes) && k[:len(MetricWireBytes)] == MetricWireBytes {
					wire += v
				}
			}
			b.ReportMetric(float64(wire)/float64(b.N), "wireB/op")
		})
	}
}
