package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
)

// Traversal offload (the FeatChase extension). A CHASEBATCH ships one or
// more compact traversal programs to the server, which walks each chain
// in its local store and answers with the whole path in one CHASEDATA —
// collapsing K dependent round trips into one. Chases are read-only and
// ride the ordinary read window: same doorbell coalescing, same tag
// demux, and the same idempotent replay on reconnect as READBATCH.

// ErrChaseUnsupported reports a chase issued against a peer (or through
// a fallback client) that never negotiated rdma.FeatChase. It is
// definitive for the current session: callers degrade to per-hop reads.
var ErrChaseUnsupported = errors.New("remote: peer does not support traversal offload")

// Wire overhead the flusher charges per chase program when bounding a
// batch against rdma.MaxFrame: the reply's fixed result header
// (u32 status | u64 final | u32 hopCount) and each hop's header
// (u32 idx | u32 len).
const (
	chaseRespHdrSize = 16
	chaseHopHdrSize  = 8
)

// chaseReplySize is the worst-case reply segment of one program: the
// full hop budget spent.
func chaseReplySize(r rdma.ChaseReq) int {
	return chaseRespHdrSize + int(r.Hops)*(chaseHopHdrSize+int(r.ObjSize))
}

// chaseIssuable validates a program client-side before it is enqueued,
// so a malformed or unboundable program fails immediately instead of as
// a server ERRTAG mid-pipeline.
func chaseIssuable(req rdma.ChaseReq) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if uint64(4)+uint64(chaseReplySize(req)) > rdma.MaxFrame {
		return fmt.Errorf("remote: chase reply bound exceeds frame limit (%d hops of %d bytes)",
			req.Hops, req.ObjSize)
	}
	return nil
}

// ChaseStore is the synchronous traversal-offload client surface the
// farmem runtime builds on.
type ChaseStore interface {
	// Chase runs one traversal program remotely and returns the visited
	// path. Hop data is caller-owned (copied out of the reply frame).
	Chase(req rdma.ChaseReq) (rdma.ChaseResult, error)
}

// AsyncChaseStore is the pipelined traversal-offload surface: issue
// without blocking, complete exactly once via the callback. The result
// passed to done is caller-owned.
type AsyncChaseStore interface {
	IssueChase(req rdma.ChaseReq, done func(rdma.ChaseResult, error))
}

// ChaseCapable reports whether the live session negotiated the chase
// verbs. A false result can flip true after a reconnect (and vice
// versa); callers treat it as advisory and handle ErrChaseUnsupported.
func (c *PipelinedClient) ChaseCapable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil && c.chaseOK
}

// IssueChase implements AsyncChaseStore: the program is enqueued like a
// read and done is invoked exactly once (possibly on the reader
// goroutine) with the decoded, caller-owned path. done must not block.
func (c *PipelinedClient) IssueChase(req rdma.ChaseReq, done func(rdma.ChaseResult, error)) {
	if err := chaseIssuable(req); err != nil {
		done(rdma.ChaseResult{}, err)
		return
	}
	c.enqueue(&pipeOp{
		chase: true, ds: req.DS, idx: req.Start, creq: req, cdone: done,
	})
}

// Chase implements ChaseStore (issue + wait).
func (c *PipelinedClient) Chase(req rdma.ChaseReq) (rdma.ChaseResult, error) {
	if err := chaseIssuable(req); err != nil {
		return rdma.ChaseResult{}, err
	}
	op := &pipeOp{
		chase: true, ds: req.DS, idx: req.Start, creq: req,
		ch: make(chan error, 1),
	}
	c.enqueue(op)
	err := <-op.ch
	return op.cres, err
}

// ChaseCapable reports whether the current underlying client speaks the
// chase verbs (false when the fallback serial client is in use, or no
// client can be dialed).
func (r *Resilient) ChaseCapable() bool {
	c, err := r.client()
	if err != nil {
		return false
	}
	pc, ok := c.(*PipelinedClient)
	return ok && pc.ChaseCapable()
}

// Chase implements ChaseStore over the replaceable client.
func (r *Resilient) Chase(req rdma.ChaseReq) (rdma.ChaseResult, error) {
	c, err := r.client()
	if err != nil {
		return rdma.ChaseResult{}, err
	}
	pc, ok := c.(*PipelinedClient)
	if !ok {
		r.retireFallback(c)
		return rdma.ChaseResult{}, ErrChaseUnsupported
	}
	res, err := pc.Chase(req)
	if err != nil && !errors.Is(err, ErrChaseUnsupported) {
		r.retire(pc)
	}
	return res, err
}

// IssueChase implements AsyncChaseStore over the replaceable client.
func (r *Resilient) IssueChase(req rdma.ChaseReq, done func(rdma.ChaseResult, error)) {
	c, err := r.client()
	if err != nil {
		done(rdma.ChaseResult{}, err)
		return
	}
	pc, ok := c.(*PipelinedClient)
	if !ok {
		r.retireFallback(c)
		done(rdma.ChaseResult{}, ErrChaseUnsupported)
		return
	}
	pc.IssueChase(req, func(res rdma.ChaseResult, err error) {
		if err != nil && !errors.Is(err, ErrChaseUnsupported) {
			r.retire(pc)
		}
		done(res, err)
	})
}

// copyChaseResult deep-copies a decoded result out of a pooled reply
// frame — one backing array holds every hop's bytes — so the completed
// op owns its path after the frame returns to the buffer pool.
func copyChaseResult(res rdma.ChaseResult) rdma.ChaseResult {
	out := rdma.ChaseResult{Status: res.Status, Final: res.Final}
	if len(res.Hops) == 0 {
		return out
	}
	total := 0
	for _, h := range res.Hops {
		total += len(h.Data)
	}
	buf := make([]byte, total)
	out.Hops = make([]rdma.ChaseHop, len(res.Hops))
	off := 0
	for i, h := range res.Hops {
		n := copy(buf[off:], h.Data)
		out.Hops[i] = rdma.ChaseHop{Idx: h.Idx, Data: buf[off : off+n : off+n]}
		off += n
	}
	return out
}

// serveChaseBatch handles one CHASEBATCH frame on a worker goroutine:
// validate every program, then walk each chain directly into one pooled
// CHASEDATA reply. The request scratch slice is returned for the worker
// to reuse. Malformed programs are rejected with a definitive ERRTAG —
// in particular a zero hop budget or an out-of-object next-pointer
// offset never reaches the walk, and the walk itself is bounded by the
// hop budget so an unterminated (cyclic) chain cannot loop the server.
func (s *Server) serveChaseBatch(j batchJob, connID int, send func(rdma.Frame) error, trace bool, scratch []rdma.ChaseReq) []rdma.ChaseReq {
	f := j.f
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	var startUS uint64
	if s.tracer != nil {
		startUS = s.tracer.Now()
	}
	reqs, err := rdma.DecodeChaseBatchInto(f.Payload, scratch)
	if err != nil {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, err.Error())
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return scratch
	}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			s.metrics.errors.Inc()
			resp := rdma.ErrTagFrame(f.Tag, err.Error())
			s.stamp(&resp, trace, j.recv, start)
			send(resp)
			return reqs
		}
	}
	bound := rdma.ChaseReplyBound(reqs)
	if bound > rdma.MaxFrame {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, "chase reply exceeds frame limit")
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return reqs
	}
	p := rdma.GetBuf(int(bound))
	w := rdma.BeginChaseData(p, len(reqs))
	hops := 0
	for _, r := range reqs {
		hops += s.chaseOne(&w, r)
	}
	s.observeChaseBatch(connID, len(reqs), hops, start, startUS, reqTrace(f))
	resp := w.Frame(f.Tag)
	s.stamp(&resp, trace, j.recv, start)
	send(resp)
	rdma.PutBuf(p)
	return reqs
}

// chaseOne walks one validated program against the local store, gathers
// each visited object into the reply in place, and returns the hop
// count. The successor word is read before the field mask clears
// anything, so a filtered next-pointer field still steers the walk.
func (s *Server) chaseOne(w *rdma.ChaseDataWriter, r rdma.ChaseReq) int {
	w.BeginResult()
	shift := uint(bits.TrailingZeros32(r.ObjSize)) // ObjSize validated power of two
	idx := r.Start
	for hop := uint32(0); ; hop++ {
		slot := w.NextHop(idx, int(r.ObjSize))
		s.Store.ReadInto(r.DS, idx, slot)
		word := binary.LittleEndian.Uint64(slot[r.NextOff:])
		if r.Mask != 0 {
			applyChaseMask(slot, r.Mask)
		}
		if !rdma.ChaseAddrTagged(word) || rdma.ChaseAddrDS(word) != r.DS {
			// Terminal: an unmanaged word, or a pointer out of the
			// program's data structure. The raw word goes back so the
			// client sees exactly what a per-hop read would have.
			w.FinishResult(rdma.ChaseDone, word)
			return int(hop) + 1
		}
		if hop+1 == r.Hops {
			// Budget spent with the chain still live: hand back the tagged
			// address of the first unvisited node for the client to resume
			// from.
			w.FinishResult(rdma.ChaseHops, word)
			return int(r.Hops)
		}
		idx = uint32(rdma.ChaseAddrOff(word) >> shift)
	}
}

// applyChaseMask zeroes every 8-byte word of slot whose mask bit is
// clear. The slot keeps its full size (offsets stay stable); only the
// filtered bytes go dark.
func applyChaseMask(slot []byte, mask uint64) {
	for w := 0; w*8+8 <= len(slot); w++ {
		if mask&(1<<uint(w)) == 0 {
			for i := w * 8; i < w*8+8; i++ {
				slot[i] = 0
			}
		}
	}
}

// observeChaseBatch records one served CHASEBATCH: the batch counters,
// the hops walked on the client's behalf, and one trace span carrying
// the program count, hop total, and the distributed trace ID (0 when
// the batch carried none).
func (s *Server) observeChaseBatch(connID, n, hops int, start time.Time, startUS uint64, trace uint64) {
	ns := uint64(time.Since(start).Nanoseconds())
	s.metrics.chaseBatches.Inc()
	s.metrics.chases.Add(uint64(n))
	s.metrics.chaseHops.Add(uint64(hops))
	s.metrics.chaseNS.Observe(ns)
	if s.tracer != nil {
		s.tracer.Emit(obs.TraceEvent{
			TS:       startUS,
			Dur:      ns / 1000,
			Cat:      "remote",
			Name:     rdma.OpChaseBatch.String(),
			TID:      connID,
			Trace:    trace,
			Arg1Name: "chases", Arg1: int64(n),
			Arg2Name: "hops", Arg2: int64(hops),
		})
	}
}
