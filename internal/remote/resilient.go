package remote

import "sync"

// Resilient is a StoreConn that survives outages longer than the
// underlying client's reconnect budget. The PipelinedClient replays its
// window across transient cuts, but once RetryMax consecutive redials
// fail (server down, not flaky) it fails permanently — the right
// behavior for the transport, since blocking ops during an unbounded
// outage would wedge the runtime instead of letting its circuit breaker
// degrade. Resilient adds the missing half: after a permanent client
// failure, the next operation (typically the breaker's Ping probe)
// dials a replacement client, so a restarted server resumes service
// without the process restarting.
//
// Each replacement dial is a single attempt that fails fast; pacing
// retries across the outage is the caller's job (the farmem breaker
// probes on its own clock).
type Resilient struct {
	addr string
	cfg  DialConfig

	mu     sync.Mutex
	cur    StoreConn
	closed bool
}

// DialResilient connects like DialAutoOpts (the initial dial uses the
// config's full retry budget) and keeps the connection replaceable
// across permanent client failures.
func DialResilient(addr string, cfg DialConfig) (*Resilient, error) {
	c, err := DialAutoOpts(addr, cfg)
	if err != nil {
		return nil, err
	}
	return &Resilient{addr: addr, cfg: cfg, cur: c}, nil
}

// client returns the live client, dialing a replacement if the previous
// one was retired.
func (r *Resilient) client() (StoreConn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClientClosed
	}
	if r.cur != nil {
		return r.cur, nil
	}
	c, err := dialAutoOnce(r.addr, r.cfg)
	if err != nil {
		return nil, err
	}
	r.cur = c
	return c, nil
}

// retire drops c if it can no longer serve operations. The serial
// client redials lazily on its own and is never retired; a pipelined
// client is retired once its reconnect budget is spent.
func (r *Resilient) retire(c StoreConn) {
	pc, ok := c.(*PipelinedClient)
	if !ok || pc.Alive() {
		return
	}
	r.mu.Lock()
	if r.cur == c {
		r.cur = nil
	}
	r.mu.Unlock()
	// The client has already failed permanently: its connection is closed
	// and its loops are exiting, so Close only waits for them. That wait
	// must not run inline — retire is reached from async completion
	// callbacks that fail() invokes on the dying client's own reader
	// goroutine, where a synchronous Close would wait on itself.
	go c.Close()
}

// retireFallback drops a serial fallback client because the caller
// needs the epoch verbs only a pipelined session carries. The serial
// fallback exists for legacy peers, but it is also where a garbled
// feature handshake lands against a fully capable server — a state a
// redial fixes and staying put never does. The epoch caller's retry
// (after ErrEpochUnsupported) then renegotiates on a fresh connection.
func (r *Resilient) retireFallback(c StoreConn) {
	r.mu.Lock()
	if r.cur == c {
		r.cur = nil
	}
	r.mu.Unlock()
	go c.Close()
}

func (r *Resilient) do(op func(StoreConn) error) error {
	c, err := r.client()
	if err != nil {
		return err
	}
	if err := op(c); err != nil {
		r.retire(c)
		return err
	}
	return nil
}

// ReadObj implements StoreConn.
func (r *Resilient) ReadObj(ds, idx int, dst []byte) error {
	return r.do(func(c StoreConn) error { return c.ReadObj(ds, idx, dst) })
}

// WriteObj implements StoreConn.
func (r *Resilient) WriteObj(ds, idx int, src []byte) error {
	return r.do(func(c StoreConn) error { return c.WriteObj(ds, idx, src) })
}

// Ping implements StoreConn; it is the usual path that detects a
// recovered server and triggers the replacement dial.
func (r *Resilient) Ping() error {
	return r.do(func(c StoreConn) error { return c.Ping() })
}

// IssueRead preserves the async prefetch path when the underlying
// client is pipelined, falling back to a synchronous read otherwise.
func (r *Resilient) IssueRead(ds, idx int, dst []byte, done func(error)) {
	c, err := r.client()
	if err != nil {
		done(err)
		return
	}
	if pc, ok := c.(*PipelinedClient); ok {
		pc.IssueRead(ds, idx, dst, func(err error) {
			if err != nil {
				r.retire(pc)
			}
			done(err)
		})
		return
	}
	done(r.do(func(sc StoreConn) error { return sc.ReadObj(ds, idx, dst) }))
}

// IssueWrite preserves the async write-back path when the underlying
// client is pipelined, falling back to a synchronous write otherwise.
// A failed async write retires the dead client like any other failure,
// so the caller's reissue finds a fresh connection.
func (r *Resilient) IssueWrite(ds, idx int, src []byte, done func(error)) {
	c, err := r.client()
	if err != nil {
		done(err)
		return
	}
	if pc, ok := c.(*PipelinedClient); ok {
		pc.IssueWrite(ds, idx, src, func(err error) {
			if err != nil {
				r.retire(pc)
			}
			done(err)
		})
		return
	}
	done(r.do(func(sc StoreConn) error { return sc.WriteObj(ds, idx, src) }))
}

// Close implements StoreConn.
func (r *Resilient) Close() error {
	r.mu.Lock()
	c := r.cur
	r.cur = nil
	r.closed = true
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
