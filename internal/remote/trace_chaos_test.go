package remote

import (
	"testing"
	"time"

	"cards/internal/faultnet"
	"cards/internal/obs"
	"cards/internal/testutil"
)

// TestTraceChaosRecorderBound hammers a traced pipelined session
// through a fault proxy until the stream has been cut 1000+ times. The
// flight recorder is always-on, so it must hold its retention bound
// (cur + prev window ≤ 2K) the whole way and own no goroutines (the
// leak checker would catch any); ops replayed across reconnects must
// surface their retry history as attempt labels — Attempts > 1 on the
// recorded op and an attempts arg > 1 on the emitted client span.
func TestTraceChaosRecorderBound(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Store.Write(1, 7, []byte{0xAB, 0xCD, 0xEF, 0x01})

	proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, faultnet.Config{
		Seed:          11,
		CutEveryBytes: 300, // a couple of ops per connection life
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Small K and a fast window so retention and rotation are both
	// exercised hard within the run.
	const k = 8
	rec := obs.NewFlightRecorder(k, 25*time.Millisecond)
	hub := obs.NewTraceHub(obs.NewTracer(0), rec, obs.SampleAll)
	hub.SetActive(hub.StartTrace())
	defer hub.ClearActive()

	opts := PipelineOpts{
		Timeout:   time.Second,
		RetryMax:  100,
		RetryBase: 200 * time.Microsecond,
		RetryCap:  time.Millisecond,
		Seed:      3,
		Trace:     hub,
	}
	// The proxy may cut mid-negotiation; only an established session is
	// the test subject.
	var c *PipelinedClient
	for i := 0; ; i++ {
		if c, err = DialPipelined(proxy.Addr(), opts); err == nil {
			break
		}
		if i == 20 {
			t.Fatalf("pipelined dial through proxy: %v", err)
		}
	}
	defer c.Close()

	const wantCuts = 1000
	dst := make([]byte, 4)
	for ops := 0; proxy.Cuts() < wantCuts; ops++ {
		if ops == 200_000 {
			t.Fatalf("only %d cuts after %d ops", proxy.Cuts(), ops)
		}
		// Reads replay transparently across reconnects (idempotent), so
		// every completed op reaches the recorder with its attempt count.
		if err := c.ReadObj(1, 7, dst); err != nil {
			t.Fatalf("read %d: %v", ops, err)
		}
		if n := rec.Len(); n > 2*k {
			t.Fatalf("flight recorder exceeded its bound after %d ops: %d records > 2K=%d",
				ops, n, 2*k)
		}
	}

	if rec.Offers() == 0 {
		t.Fatal("no op ever reached the recorder")
	}
	maxAttempts := 0
	for _, op := range rec.Snapshot() {
		if op.TraceID == 0 {
			t.Errorf("recorded op %s ds%d[%d] has no trace ID", op.Op, op.DS, op.Idx)
		}
		if op.Attempts > maxAttempts {
			maxAttempts = op.Attempts
		}
	}
	if maxAttempts < 2 {
		t.Error("1000+ cuts but no recorded op carries an attempts label > 1")
	}
	spanRetried := false
	for _, ev := range hub.Tracer.Events() {
		if ev.Cat == "remote" && ev.Arg1Name == "attempts" && ev.Arg1 > 1 {
			spanRetried = true
			break
		}
	}
	if !spanRetried {
		t.Error("no client span carries an attempts arg > 1")
	}
}
