package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"cards/internal/obs"
)

// TestServerObsConcurrent drives a shared Server from many concurrent
// connections, each served by its own goroutine, all emitting into one
// registry and one small ring tracer. Run under -race this is the
// satellite coverage for concurrent Tracer.Emit from the remote server's
// per-connection goroutines.
func TestServerObsConcurrent(t *testing.T) {
	const (
		conns    = 8
		perConn  = 200
		traceCap = 64 // far smaller than conns*perConn: forces drops
	)
	tr := obs.NewTracer(traceCap)
	reg := obs.NewRegistry()
	srv := NewServerWith(reg, tr)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			buf := make([]byte, 64)
			for i := 0; i < perConn; i++ {
				if err := cl.WriteObj(c, i, []byte(fmt.Sprintf("obj-%d-%d", c, i))); err != nil {
					errs <- err
					return
				}
				if err := cl.ReadObj(c, i, buf); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = conns * perConn
	if r, w := srv.Counts(); r != total || w != total {
		t.Fatalf("Counts() = (%d, %d), want (%d, %d)", r, w, total, total)
	}
	snap := srv.ObsSnapshot()
	if got := snap.Counter(MetricReads); got != total {
		t.Errorf("%s = %d, want %d", MetricReads, got, total)
	}
	if got := snap.Histogram(MetricReadNS).Count; got != total {
		t.Errorf("%s count = %d, want %d", MetricReadNS, got, total)
	}
	if got := snap.Histogram(MetricWriteNS).Count; got != total {
		t.Errorf("%s count = %d, want %d", MetricWriteNS, got, total)
	}
	if got := snap.Gauge(MetricResidentObjects); got != total {
		t.Errorf("%s = %d, want %d", MetricResidentObjects, got, total)
	}
	if got := snap.Gauge(MetricInflight); got != 0 {
		t.Errorf("%s = %d after drain, want 0", MetricInflight, got)
	}
	if got := snap.Counter(MetricBytesIn); got == 0 {
		t.Error("no wire bytes counted in")
	}

	// Every request emitted exactly one span; the tiny ring kept the
	// first traceCap and dropped (without blocking) the rest.
	if kept, drops := tr.Len(), tr.Drops(); kept != traceCap || kept+int(drops) != 2*total {
		t.Fatalf("ring kept %d dropped %d, want %d kept and %d total",
			kept, drops, traceCap, 2*total)
	}
	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != traceCap {
		t.Fatalf("exported %d events, want %d", len(doc.TraceEvents), traceCap)
	}
	for _, ev := range doc.TraceEvents {
		if ev["cat"] != "remote" {
			t.Fatalf("unexpected category %v", ev["cat"])
		}
	}
}

// TestClientObs checks the client-side mirror series.
func TestClientObs(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reg := obs.NewRegistry()
	cl.SetObs(reg)

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteObj(1, 2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 5)
	if err := cl.ReadObj(1, 2, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "hello" {
		t.Fatalf("read back %q", dst)
	}
	snap := reg.Snapshot()
	for _, m := range []string{MetricClientPingNS, MetricClientReadNS, MetricClientWriteNS} {
		if got := snap.Histogram(m).Count; got != 1 {
			t.Errorf("%s count = %d, want 1", m, got)
		}
	}
	if snap.Counter(MetricBytesOut) == 0 || snap.Counter(MetricBytesIn) == 0 {
		t.Error("client wire byte counters empty")
	}
}
