package remote

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/ir"
	"cards/internal/policy"
	"cards/internal/workloads"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestPing(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteObjects(t *testing.T) {
	srv, cl := startServer(t)
	data := []byte("0123456789abcdef")
	if err := cl.WriteObj(2, 5, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := cl.ReadObj(2, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("roundtrip = %q", buf)
	}
	// Absent object reads as zeros.
	zeros := make([]byte, 8)
	if err := cl.ReadObj(9, 9, zeros); err != nil {
		t.Fatal(err)
	}
	for _, b := range zeros {
		if b != 0 {
			t.Fatal("absent object should read zero")
		}
	}
	r, w := srv.Counts()
	if r != 2 || w != 1 {
		t.Fatalf("counts = %d/%d", r, w)
	}
	if srv.Store.Len() != 1 {
		t.Fatalf("store len = %d", srv.Store.Len())
	}
}

func TestShortReadBuffer(t *testing.T) {
	_, cl := startServer(t)
	cl.WriteObj(0, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	buf := make([]byte, 4)
	if err := cl.ReadObj(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
		t.Fatalf("short read = %v", buf)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	addr := srv.ln.Addr().String()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				data := []byte{byte(g), byte(i)}
				if err := cl.WriteObj(g, i, data); err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 2)
				if err := cl.ReadObj(g, i, buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(g) || buf[1] != byte(i) {
					t.Errorf("corrupt readback %v", buf)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if srv.Store.Len() != 8*50 {
		t.Fatalf("store len = %d, want 400", srv.Store.Len())
	}
}

func TestPipeTransport(t *testing.T) {
	srv := NewServer()
	c1, c2 := net.Pipe()
	go srv.ServeConn(c1)
	cl := NewClientConn(c2)
	defer cl.Close()
	if err := cl.WriteObj(1, 1, []byte{42}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := cl.ReadObj(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("readback = %d", buf[0])
	}
}

// TestRuntimeOverTCP is the integration test: a compiled Listing 1 runs
// with the remote tier on a real TCP server — the two-machine setup of
// the paper, on loopback.
func TestRuntimeOverTCP(t *testing.T) {
	srv, cl := startServer(t)

	// Fill-then-sum: the sum pass re-reads objects the fill pass dirtied
	// and evicted, forcing real READ and WRITE traffic on the wire.
	m := ir.NewModule("fillsum")
	n := int64(8192) // 64 KiB over an 8-object (32 KiB) cache
	f := m.NewFunc("main", ir.Void())
	b := ir.NewBuilder(f)
	arr := b.Alloc(ir.I64(), ir.CI(n))
	fill := b.CountedLoop("f", ir.CI(0), ir.CI(n), ir.CI(1))
	b.Store(ir.I64(), fill.IV, b.Idx(arr, fill.IV))
	b.CloseLoop(fill)
	acc := f.NewReg("acc", ir.I64())
	b.Assign(acc, ir.CI(0))
	sum := b.CountedLoop("s", ir.CI(0), ir.CI(n), ir.CI(1))
	b.Assign(acc, b.Add(acc, b.Load(ir.I64(), b.Idx(arr, sum.IV))))
	b.CloseLoop(sum)
	b.Ret(nil)
	m.AssignSites()
	ir.MustVerify(m)

	c, err := core.Compile(m, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(core.RunConfig{
		Policy:          policy.AllRemotable,
		PinnedBudget:    0,
		RemotableBudget: 8 * 4096, // force heavy eviction traffic
		Store:           cl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime.RemoteFetches+res.TotalPrefetchHits() == 0 {
		t.Fatal("no remote traffic over TCP (neither demand fetches nor prefetch hits)")
	}
	reads, writes := srv.Counts()
	if reads == 0 || writes == 0 {
		t.Fatalf("server saw reads=%d writes=%d", reads, writes)
	}
	if srv.Store.Len() == 0 {
		t.Fatal("server store empty after eviction traffic")
	}
	t.Logf("TCP run: %d fetches, server reads=%d writes=%d objects=%d",
		res.Runtime.RemoteFetches, reads, writes, srv.Store.Len())
	var _ farmem.Store = cl // interface check
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer()
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadsOverTCP runs real benchmark programs with the far tier on
// a TCP server: compiled BFS and analytics execute with heavy eviction
// against the wire protocol and must produce the same checksums as the
// in-process store.
func TestWorkloadsOverTCP(t *testing.T) {
	builds := map[string]func() *ir.Module{
		"bfs": func() *ir.Module {
			return workloads.BuildBFS(workloads.BFSConfig{
				Vertices: 256, Degree: 4, Trials: 1, Seed: 11}).Module
		},
		"analytics": func() *ir.Module {
			return workloads.BuildTaxi(workloads.TaxiConfig{
				Trips: 512, HotPasses: 2, Seed: 11}).Module
		},
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			run := func(store farmem.Store) uint64 {
				c, err := core.Compile(build(), core.CompileOptions{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(core.RunConfig{
					Policy:          policy.AllRemotable,
					PinnedBudget:    0,
					RemotableBudget: 8 * 4096, // tiny cache: force wire traffic
					Store:           store,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res.MainResult
			}
			want := run(nil) // in-process store

			srv, cl := startServer(t)
			got := run(cl)
			if got != want {
				t.Fatalf("TCP checksum %#x != in-process %#x", got, want)
			}
			reads, writes := srv.Counts()
			if reads == 0 || writes == 0 {
				t.Fatalf("no wire traffic: reads=%d writes=%d", reads, writes)
			}
		})
	}
}
