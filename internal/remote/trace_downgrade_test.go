package remote

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/testutil"
)

// preTraceServe answers the PR-5 batch protocol — batching, CRC,
// WRITEBATCH — but not the trace extension: the feature reply omits
// FeatTrace and every frame is parsed and emitted ext-free, exactly
// like a server built before the extension existed.
func preTraceServe(conn net.Conn, store *ObjectStore) {
	defer conn.Close()
	crc := false
	for {
		f, err := rdma.ReadFrameOpts(conn, crc, false)
		if err != nil {
			return
		}
		var resp rdma.Frame
		enableCRC := false
		switch f.Op {
		case rdma.OpPing:
			if feats, ok := rdma.DecodeFeatures(f.Payload); ok {
				resp = rdma.Frame{Op: rdma.OpOK,
					Payload: rdma.EncodeFeatures(rdma.FeatBatch | rdma.FeatCRC | rdma.FeatWriteBatch)}
				enableCRC = feats&rdma.FeatCRC != 0
			} else {
				resp = rdma.Frame{Op: rdma.OpOK}
			}
		case rdma.OpReadBatch:
			reqs, derr := rdma.DecodeReadBatch(f.Payload)
			if derr != nil {
				resp = rdma.ErrTagFrame(f.Tag, derr.Error())
				break
			}
			segs := make([][]byte, len(reqs))
			for i, r := range reqs {
				segs[i] = store.Read(r.DS, r.Idx, r.Size)
			}
			if resp, derr = rdma.EncodeDataBatch(f.Tag, segs); derr != nil {
				resp = rdma.ErrTagFrame(f.Tag, derr.Error())
			}
		case rdma.OpWriteTag:
			req, derr := rdma.DecodeWrite(f.Payload)
			if derr != nil {
				resp = rdma.ErrTagFrame(f.Tag, derr.Error())
				break
			}
			store.Write(req.DS, req.Idx, req.Data)
			resp = rdma.Frame{Op: rdma.OpAckTag, Tag: f.Tag}
		case rdma.OpWriteBatch:
			reqs, derr := rdma.DecodeWriteBatch(f.Payload)
			if derr != nil {
				resp = rdma.ErrTagFrame(f.Tag, derr.Error())
				break
			}
			for _, r := range reqs {
				store.Write(r.DS, r.Idx, r.Data)
			}
			resp = rdma.EncodeAckBatch(f.Tag, len(reqs))
		default:
			resp = rdma.ErrFrame("unexpected op")
		}
		if crc {
			err = rdma.WriteFrameCRC(conn, resp)
		} else {
			err = rdma.WriteFrame(conn, resp)
		}
		if err != nil {
			return
		}
		if enableCRC {
			crc = true
		}
	}
}

// recordConn tees everything the client sends into a shared buffer, so
// the test can compare the session's exact wire bytes afterwards.
type recordConn struct {
	net.Conn
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (r recordConn) Read(p []byte) (int, error) {
	n, err := r.Conn.Read(p)
	if n > 0 {
		r.mu.Lock()
		r.buf.Write(p[:n])
		r.mu.Unlock()
	}
	return n, err
}

// preTraceListener starts a pre-trace server that records every byte
// its clients send; returns the address, the capture, and the live
// server-side conns (for the test to cut).
func preTraceListener(t *testing.T) (addr string, mu *sync.Mutex, capture *bytes.Buffer, conns *[]net.Conn) {
	t.Helper()
	store := NewObjectStore()
	store.Write(1, 7, []byte{0xAB, 0xCD})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	mu = &sync.Mutex{}
	capture = &bytes.Buffer{}
	conns = &[]net.Conn{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			*conns = append(*conns, conn)
			mu.Unlock()
			go preTraceServe(recordConn{Conn: conn, mu: mu, buf: capture}, store)
		}
	}()
	t.Cleanup(func() {
		mu.Lock()
		for _, c := range *conns {
			c.Close()
		}
		mu.Unlock()
	})
	return ln.Addr().String(), mu, capture, conns
}

// TestPipelinedTraceDowngradeAgainstPreTraceServer mirrors the CRC
// downgrade test for the trace extension: a trace-enabled pipelined
// client always asks for FeatTrace, but a pre-trace server's feature
// reply omits it — the session must downgrade to ext-free framing and
// keep working, a forced disconnect must renegotiate to the same
// downgrade on the fresh stream, and every frame the downgraded client
// sends must be byte-identical to what a client with tracing never
// configured sends for the same ops.
func TestPipelinedTraceDowngradeAgainstPreTraceServer(t *testing.T) {
	testutil.NoGoroutineLeaks(t)

	tracedAddr, tracedMu, tracedCap, tracedConns := preTraceListener(t)
	plainAddr, plainMu, plainCap, _ := preTraceListener(t)

	// The traced client has a live sampled root active while it works:
	// the downgrade itself — not the absence of a trace to carry — must
	// be what keeps the frames legacy.
	hub := obs.NewTraceHub(obs.NewTracer(0), obs.NewFlightRecorder(0, 0), obs.SampleAll)
	hub.SetActive(hub.StartTrace())
	defer hub.ClearActive()

	opts := PipelineOpts{
		Timeout:   time.Second,
		RetryMax:  4,
		RetryBase: 5 * time.Millisecond,
	}
	topts := opts
	topts.Trace = hub
	traced, err := DialPipelined(tracedAddr, topts)
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()
	plain, err := DialPipelined(plainAddr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	if traced.featReq&rdma.FeatTrace == 0 {
		t.Fatal("trace-enabled client should request FeatTrace on every negotiation")
	}
	if plain.featReq&rdma.FeatTrace != 0 {
		t.Fatal("control client must not request FeatTrace")
	}
	sessionTrace := func(c *PipelinedClient) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.trace
	}
	if sessionTrace(traced) {
		t.Fatal("pre-trace server cannot stamp replies: session must downgrade")
	}

	// The same op sequence on both clients, one op at a time so each op
	// is exactly one wire frame and the two streams stay comparable.
	chase := func(c *PipelinedClient) {
		t.Helper()
		buf := make([]byte, 2)
		if err := c.ReadObj(1, 7, buf); err != nil || buf[0] != 0xAB || buf[1] != 0xCD {
			t.Fatalf("downgraded session read = %x, %v", buf, err)
		}
		if err := c.WriteObj(1, 8, []byte{0x11, 0x22, 0x33}); err != nil {
			t.Fatalf("downgraded session write: %v", err)
		}
		one := make([]byte, 3)
		if err := c.ReadObj(1, 8, one); err != nil || one[0] != 0x11 {
			t.Fatalf("read-back = %x, %v", one, err)
		}
	}
	chase(traced)
	chase(plain)

	// Byte-exactness: past the feature PING (whose payload legitimately
	// differs by the FeatTrace bit), the downgraded session's wire bytes
	// are identical to the never-traced session's. Every op above was
	// acknowledged, so both captures are complete.
	tracedMu.Lock()
	tracedBytes := append([]byte(nil), tracedCap.Bytes()...)
	tracedMu.Unlock()
	plainMu.Lock()
	plainBytes := append([]byte(nil), plainCap.Bytes()...)
	plainMu.Unlock()
	tracedOps := skipFirstFrame(t, tracedBytes)
	plainOps := skipFirstFrame(t, plainBytes)
	if !bytes.Equal(tracedOps, plainOps) {
		t.Fatalf("downgraded session not byte-exact with legacy framing:\n traced %x\n legacy %x",
			tracedOps, plainOps)
	}

	// Kill the server side: the next read breaks, redials, and
	// renegotiates with the full ask — landing on the same downgrade.
	tracedMu.Lock()
	for _, c := range *tracedConns {
		c.Close()
	}
	*tracedConns = (*tracedConns)[:0]
	tracedMu.Unlock()
	buf := make([]byte, 2)
	if err := traced.ReadObj(1, 7, buf); err != nil {
		t.Fatalf("read after forced disconnect should retry through redial: %v", err)
	}
	if buf[0] != 0xAB || buf[1] != 0xCD {
		t.Fatalf("post-redial read = %x", buf)
	}
	if sessionTrace(traced) {
		t.Fatal("renegotiation against the pre-trace server must downgrade again")
	}
	if traced.featReq&rdma.FeatTrace == 0 {
		t.Fatal("the downgrade must not clear the per-connection trace ask")
	}
}

// skipFirstFrame drops the leading legacy-framed feature PING from a
// captured client stream: u32 payloadLen | u8 op | payload (untagged).
func skipFirstFrame(t *testing.T, b []byte) []byte {
	t.Helper()
	if len(b) < 5 {
		t.Fatalf("capture too short for a feature ping: %d bytes", len(b))
	}
	n := 5 + int(binary.LittleEndian.Uint32(b))
	if op := rdma.Op(b[4]); op != rdma.OpPing {
		t.Fatalf("capture does not start with PING: op %s", op)
	}
	if len(b) < n {
		t.Fatalf("truncated feature ping: %d of %d bytes", len(b), n)
	}
	return b[n:]
}
