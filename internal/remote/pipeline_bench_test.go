package remote

import (
	"fmt"
	"net"
	"sync"
	"testing"
)

const benchObjSize = 4096

func benchServerTCP(b *testing.B) string {
	b.Helper()
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	srv.Store.Write(0, 0, make([]byte, benchObjSize))
	return addr
}

func BenchmarkSerialReadTCP(b *testing.B) {
	addr := benchServerTCP(b)
	cl, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	dst := make([]byte, benchObjSize)
	b.SetBytes(benchObjSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.ReadObj(0, 0, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPipelinedRead(b *testing.B, cl *PipelinedClient) {
	b.Helper()
	dsts := make([][]byte, 64)
	for i := range dsts {
		dsts[i] = make([]byte, benchObjSize)
	}
	var wg sync.WaitGroup
	wg.Add(b.N)
	b.SetBytes(benchObjSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.IssueRead(0, 0, dsts[i%len(dsts)], func(err error) {
			if err != nil {
				b.Error(err)
			}
			wg.Done()
		})
	}
	wg.Wait()
}

func BenchmarkPipelinedReadTCP(b *testing.B) {
	for _, depth := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			addr := benchServerTCP(b)
			cl, err := DialPipelined(addr, PipelineOpts{Window: depth})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			benchPipelinedRead(b, cl)
		})
	}
}

func BenchmarkSerialReadPipe(b *testing.B) {
	srv := NewServer()
	srv.Store.Write(0, 0, make([]byte, benchObjSize))
	c1, c2 := net.Pipe()
	go srv.ServeConn(c1)
	cl := NewClientConn(c2)
	defer cl.Close()
	dst := make([]byte, benchObjSize)
	b.SetBytes(benchObjSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.ReadObj(0, 0, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelinedReadPipe(b *testing.B) {
	for _, depth := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			srv := NewServer()
			srv.Store.Write(0, 0, make([]byte, benchObjSize))
			c1, c2 := net.Pipe()
			go srv.ServeConn(c1)
			cl, err := NewPipelined(c2, PipelineOpts{Window: depth})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			benchPipelinedRead(b, cl)
		})
	}
}
