package remote

// The FeatCompact wire tier, server side and shared policy: bit-packed
// batch frames (rdma/compact.go), adaptive per-object compression, and
// dirty-range write-back with read-modify-write application.
//
// Compression is decided online, per data structure: both endpoints
// track an EWMA of the observed wire/raw ratio and stop attempting
// compression for a DS whose objects do not shrink, re-probing every
// probeEvery objects so a workload whose data turns compressible is
// noticed. The decision is a heuristic — correctness never depends on
// it (every scheme is self-describing on the wire).
//
// Range writes ship only the modified byte extents of an object; the
// server splices them into the stored image under the store lock. A
// plain range write is unconditional (the farmem runtime serializes
// write-backs per object, and reissue after an uncertain ack is a full
// object). An epoch-stamped range write is conditional: it needs the
// stored image to be the immediate predecessor of the epoch it stamps —
// a replica that missed an epoch has a stale base, and splicing into it
// would manufacture an image that never existed. Those tuples are
// rejected via the ACKBATCH-C bitmap; the sender marks the member
// divergent and lets anti-entropy resync repair it with full objects.

import (
	"errors"
	"sync/atomic"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/stats"
)

// Wire-efficiency series (the FeatCompact tier).
const (
	// MetricWireBytes counts bytes on the wire per frame verb
	// (label "verb"), both directions, payload framing included.
	MetricWireBytes = "cards_wire_bytes_total"
	// MetricWireCompressRatio observes wire/raw per-mille for every
	// object that went through a compression attempt.
	MetricWireCompressRatio = "cards_wire_compression_ratio_permille"
	// MetricRangeWrites counts range-write tuples applied.
	MetricRangeWrites = "cards_remote_range_writes_total"
	// MetricRangeBytesSaved accumulates objSize − shipped bytes over
	// range tuples: what full-object write-back would have cost extra.
	MetricRangeBytesSaved = "cards_wire_range_bytes_saved_total"
	// MetricRangeRejects counts epoch range tuples rejected for a stale
	// base image.
	MetricRangeRejects = "cards_remote_range_rejects_total"
)

// ErrStaleRangeBase is the definitive completion of an epoch-stamped
// range write whose target's stored image missed an epoch: the peer
// cannot splice extents into a stale base. The caller (the replica
// fan-out) marks the member divergent; resync repairs it with full
// objects.
var ErrStaleRangeBase = errors.New("remote: range write rejected: stale base image on peer")

// wireMetrics caches the verb-labeled wire-byte counters plus the
// compression and range-write series, so the hot paths never touch the
// registry map lock. Built once per endpoint (server or pipelined
// client) at construction.
type wireMetrics struct {
	byVerb       map[rdma.Op]*stats.Counter
	other        *stats.Counter
	ratio        *stats.Histogram
	rangeWrites  *stats.Counter
	rangeSaved   *stats.Counter
	rangeRejects *stats.Counter
}

func newWireMetrics(reg *obs.Registry) *wireMetrics {
	ops := []rdma.Op{
		rdma.OpReadBatch, rdma.OpDataBatch, rdma.OpWriteBatch, rdma.OpAckBatch,
		rdma.OpWriteTag, rdma.OpAckTag,
		rdma.OpReadEpochBatch, rdma.OpDataEpochBatch, rdma.OpWriteEpochBatch,
		rdma.OpChaseBatch, rdma.OpChaseData,
		rdma.OpReadBatchC, rdma.OpDataBatchC, rdma.OpWriteBatchC,
		rdma.OpWriteEpochBatchC, rdma.OpAckBatchC,
	}
	m := &wireMetrics{
		byVerb:       make(map[rdma.Op]*stats.Counter, len(ops)),
		other:        reg.Counter(MetricWireBytes, "verb", "other"),
		ratio:        reg.Histogram(MetricWireCompressRatio),
		rangeWrites:  reg.Counter(MetricRangeWrites),
		rangeSaved:   reg.Counter(MetricRangeBytesSaved),
		rangeRejects: reg.Counter(MetricRangeRejects),
	}
	for _, op := range ops {
		m.byVerb[op] = reg.Counter(MetricWireBytes, "verb", op.String())
	}
	return m
}

// add charges one frame's wire bytes to its verb's counter. The map is
// immutable after construction, so concurrent adds are safe.
func (m *wireMetrics) add(op rdma.Op, n uint64) {
	if m == nil {
		return
	}
	if c, ok := m.byVerb[op]; ok {
		c.Add(n)
		return
	}
	m.other.Add(n)
}

// observeRatio records one compression attempt's outcome.
func (m *wireMetrics) observeRatio(permille uint64) {
	if m != nil {
		m.ratio.Observe(permille)
	}
}

// Adaptive compression policy: one packed word per DS slot.
//
//	bits  0..15 — EWMA of wire/raw per-mille (0 = no observation yet)
//	bits 16..31 — objects skipped since the last probe
//
// Updates are load/store rather than CAS: a lost update under a race
// costs one stale decision, which the EWMA absorbs — the policy is a
// heuristic, not a correctness mechanism.
const (
	policySlots       = 256 // DS slots (power of two; collisions just share a verdict)
	probePeriod       = 32  // re-probe an incompressible DS every Nth object
	compressPermille  = 900 // compress while the EWMA beats this ratio
	policyMinPermille = 1   // floor so a stored EWMA is never mistaken for "unseen"
)

type compressPolicy struct {
	state [policySlots]atomic.Uint64
}

func (p *compressPolicy) slot(ds uint32) *atomic.Uint64 {
	return &p.state[ds&(policySlots-1)]
}

// shouldCompress reports whether the next object of ds is worth a
// compression attempt: always while unseen or historically shrinking,
// every probePeriod-th object otherwise.
func (p *compressPolicy) shouldCompress(ds uint32) bool {
	s := p.slot(ds)
	v := s.Load()
	ewma := v & 0xFFFF
	if ewma == 0 || ewma < compressPermille {
		return true
	}
	skip := (v>>16)&0xFFFF + 1
	probe := skip >= probePeriod
	if probe {
		skip = 0
	}
	s.Store(v&^uint64(0xFFFF0000) | skip<<16)
	return probe
}

// observe feeds one attempt's wire/raw outcome into the DS's EWMA
// (weight 1/8). A failed attempt reports wireLen == rawLen.
func (p *compressPolicy) observe(ds uint32, rawLen, wireLen int) {
	if rawLen <= 0 {
		return
	}
	ratio := uint64(wireLen) * 1000 / uint64(rawLen)
	if ratio < policyMinPermille {
		ratio = policyMinPermille
	}
	if ratio > 0xFFFF {
		ratio = 0xFFFF
	}
	s := p.slot(ds)
	v := s.Load()
	ewma := v & 0xFFFF
	if ewma == 0 {
		ewma = ratio
	} else {
		ewma = (ewma*7 + ratio) / 8
	}
	s.Store(v&^uint64(0xFFFF) | ewma)
}

// WriteRange splices the extents' bytes (concatenated in raw) into the
// stored object, which is first grown or truncated to objSize — the
// read-modify-write the range sub-encoding relies on. The splice is
// atomic under the store lock. Extents were validated against objSize
// at decode time.
func (s *ObjectStore) WriteRange(ds, idx, objSize uint32, exts []rdma.Extent, raw []byte) {
	k := [2]uint32{ds, idx}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spliceLocked(k, objSize, exts, raw)
}

// WriteRangeEpoch is WriteRange with the replication layer's
// conditional-apply contract, extended for partial images: the splice
// needs a base at exactly the predecessor epoch (or at/above the
// stamped epoch, where reapplying the same bytes is a no-op — the
// idempotent replay of an uncertain ack). A base below the predecessor
// missed an epoch; splicing into it would fabricate state, so the
// write is rejected and the sender must fall back to full objects.
func (s *ObjectStore) WriteRangeEpoch(ds, idx uint32, epoch uint64, objSize uint32, exts []rdma.Extent, raw []byte) (rejected bool) {
	k := [2]uint32{ds, idx}
	s.mu.Lock()
	defer s.mu.Unlock()
	stored := s.ep[k]
	if stored > epoch {
		return false // newer image already present: obsolete tuple, drop with a positive ack
	}
	if stored+1 < epoch {
		return true // missed an epoch: the base is stale, cannot splice
	}
	s.spliceLocked(k, objSize, exts, raw)
	s.ep[k] = epoch
	return false
}

func (s *ObjectStore) spliceLocked(k [2]uint32, objSize uint32, exts []rdma.Extent, raw []byte) {
	obj := s.m[k]
	if uint32(len(obj)) != objSize {
		nb := make([]byte, objSize)
		copy(nb, obj)
		obj = nb
		s.m[k] = obj
	}
	off := uint32(0)
	for _, e := range exts {
		copy(obj[e.Off:e.Off+e.Len], raw[off:off+e.Len])
		off += e.Len
	}
}

// serveBatchC handles one READBATCH-C frame on a worker goroutine: the
// compact twin of serveBatch. Each object is staged, classified (zero /
// compressed / raw — compression only when the session negotiated
// FeatCompress and the adaptive policy expects the DS to shrink), and
// packed into one DATABATCH-C reply by the worker's pooled builder.
func (s *Server) serveBatchC(j batchJob, connID int, send func(rdma.Frame) error, trace, compress bool, scratch []rdma.ReadReq, cb *rdma.DataBatchCBuilder) []rdma.ReadReq {
	f := j.f
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	var startUS uint64
	if s.tracer != nil {
		startUS = s.tracer.Now()
	}
	s.metrics.wire.add(f.Op, f.WireSize())
	reqs, err := rdma.DecodeReadBatchCInto(f.Payload, scratch[:0])
	if err != nil {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, err.Error())
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return scratch
	}
	size := 6 + 13*len(reqs)
	for _, r := range reqs {
		size += int(r.Size)
	}
	if size > rdma.MaxFrame {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, "batch reply exceeds frame limit")
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return reqs
	}
	// A batch with no compression candidates takes the reserved-header
	// layout: the staged object bytes become the frame payload directly,
	// skipping the copy-assembly of the LZ-capable path.
	tryBatch := false
	if compress {
		for _, r := range reqs {
			if s.cpolicy.shouldCompress(r.DS) {
				tryBatch = true
				break
			}
		}
	}
	cb.Reset()
	if !tryBatch {
		cb.Begin(reqs)
	}
	for _, r := range reqs {
		buf := cb.Stage(int(r.Size))
		s.Store.ReadInto(r.DS, r.Idx, buf)
		try := tryBatch && s.cpolicy.shouldCompress(r.DS)
		scheme, wireLen := cb.Add(buf, try)
		if try && scheme != rdma.SchemeZero {
			s.cpolicy.observe(r.DS, len(buf), wireLen)
			if len(buf) > 0 {
				s.metrics.wire.observeRatio(uint64(wireLen) * 1000 / uint64(len(buf)))
			}
		}
	}
	resp, err := cb.Frame(f.Tag)
	if err != nil {
		s.metrics.errors.Inc()
		resp = rdma.ErrTagFrame(f.Tag, err.Error())
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return reqs
	}
	s.observeBatch(connID, len(reqs), start, startUS, reqTrace(f))
	s.metrics.wire.add(resp.Op, resp.WireSize())
	s.stamp(&resp, trace, j.recv, start)
	send(resp)
	rdma.PutBuf(resp.Payload)
	return reqs
}

// compactWriteScratch is the per-worker reusable state of the compact
// write path: decoded tuples, the shared extent arena, the reject
// bitmap, and materialization buffers (one zeroed, one for LZ output).
type compactWriteScratch struct {
	reqs []rdma.WriteReqC
	exts []rdma.Extent
	rej  []uint64
	lz   []byte // LZ decompression target
	zero []byte // kept all-zero for SchemeZero tuples
}

func (cw *compactWriteScratch) release() {
	rdma.PutBuf(cw.lz)
	rdma.PutBuf(cw.zero)
	cw.lz, cw.zero = nil, nil
}

// materialize returns tuple r's raw bytes, decompressing or zero-
// extending into the worker's scratch as the scheme demands.
func (cw *compactWriteScratch) materialize(r *rdma.WriteReqC) ([]byte, error) {
	n := int(r.RawLen)
	switch r.Scheme {
	case rdma.SchemeZero:
		if cap(cw.zero) < n {
			rdma.PutBuf(cw.zero)
			cw.zero = rdma.GetBuf(n)
			clear(cw.zero[:cap(cw.zero)])
		}
		return cw.zero[:n], nil
	case rdma.SchemeLZ:
		if cap(cw.lz) < n {
			rdma.PutBuf(cw.lz)
			cw.lz = rdma.GetBuf(n)
		}
		dst := cw.lz[:n]
		if err := rdma.LZDecompress(dst, r.Data); err != nil {
			return nil, err
		}
		return dst, nil
	default:
		return r.Data, nil
	}
}

// serveWriteBatchC handles one WRITEBATCH-C / WRITEEPOCHBATCH-C frame
// on a worker goroutine: tuples apply in batch order — full objects
// through Write/WriteEpoch, range tuples spliced read-modify-write —
// and the whole batch is acknowledged with one ACKBATCH-C whose bitmap
// marks the epoch range tuples rejected for a stale base.
func (s *Server) serveWriteBatchC(j batchJob, connID int, send func(rdma.Frame) error, trace, epoch bool, cw *compactWriteScratch) {
	f := j.f
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	var startUS uint64
	if s.tracer != nil {
		startUS = s.tracer.Now()
	}
	s.metrics.wire.add(f.Op, f.WireSize())
	reqs, exts, err := rdma.DecodeWriteBatchCInto(f.Payload, cw.reqs[:0], cw.exts[:0], epoch)
	cw.reqs, cw.exts = reqs, exts
	if err != nil {
		s.metrics.errors.Inc()
		resp := rdma.ErrTagFrame(f.Tag, err.Error())
		s.stamp(&resp, trace, j.recv, start)
		send(resp)
		return
	}
	words := (len(reqs) + 63) / 64
	if cap(cw.rej) < words {
		cw.rej = make([]uint64, words)
	}
	rej := cw.rej[:words]
	clear(rej)
	for i := range reqs {
		r := &reqs[i]
		raw, merr := cw.materialize(r)
		if merr != nil {
			// A tuple that passed CRC but fails decompression is corrupt
			// framing: reject the whole batch definitively. Earlier tuples
			// have applied — the client's write-back layer reissues full
			// objects on error, which is idempotent.
			s.metrics.errors.Inc()
			resp := rdma.ErrTagFrame(f.Tag, merr.Error())
			s.stamp(&resp, trace, j.recv, start)
			send(resp)
			return
		}
		if r.Extents == nil {
			if epoch {
				s.Store.WriteEpoch(r.DS, r.Idx, r.Epoch, raw)
			} else {
				s.Store.Write(r.DS, r.Idx, raw)
			}
			continue
		}
		s.metrics.wire.rangeWrites.Inc()
		if r.ObjSize > r.RawLen {
			s.metrics.wire.rangeSaved.Add(uint64(r.ObjSize - r.RawLen))
		}
		if epoch {
			if s.Store.WriteRangeEpoch(r.DS, r.Idx, r.Epoch, r.ObjSize, r.Extents, raw) {
				rej[i/64] |= 1 << (i % 64)
				s.metrics.wire.rangeRejects.Inc()
			}
		} else {
			s.Store.WriteRange(r.DS, r.Idx, r.ObjSize, r.Extents, raw)
		}
	}
	s.observeWriteBatch(connID, len(reqs), start, startUS, reqTrace(f))
	resp := rdma.EncodeAckBatchC(f.Tag, len(reqs), rej)
	s.metrics.wire.add(resp.Op, resp.WireSize())
	s.stamp(&resp, trace, j.recv, start)
	send(resp)
	rdma.PutBuf(resp.Payload)
}

// RangeWriteStore is the asynchronous dirty-range write-back surface:
// src is the full object image (the fallback when the session lacks
// FeatCompact, and the base the extents index into), exts the modified
// byte ranges, sorted and non-overlapping. src must stay valid until
// done runs; done must not block.
type RangeWriteStore interface {
	IssueWriteRanges(ds, idx int, src []byte, exts []rdma.Extent, done func(error))
}

// rangeWritable reports whether exts is a range set the wire tier can
// ship — bounded extent count, and at least one extent strictly
// smaller than the object (otherwise a full write is never worse).
func rangeWritable(src []byte, exts []rdma.Extent) bool {
	if len(exts) == 0 || len(exts) > rdma.MaxExtents {
		return false
	}
	total := uint32(0)
	for _, e := range exts {
		total += e.Len
	}
	return int(total) < len(src)
}

// IssueWriteRanges implements RangeWriteStore: the write rides the
// pipeline like IssueWrite, but on a FeatCompact session only the
// extents' bytes ship (spliced server-side read-modify-write). The
// flusher falls back to the full object when the live session lacks
// the feature — correctness never depends on negotiation. exts must
// stay valid until done runs, like src.
func (c *PipelinedClient) IssueWriteRanges(ds, idx int, src []byte, exts []rdma.Extent, done func(error)) {
	if !rangeWritable(src, exts) {
		c.IssueWrite(ds, idx, src, done)
		return
	}
	c.enqueue(&pipeOp{
		write: true, ds: uint32(ds), idx: uint32(idx),
		data: src, exts: exts, done: done,
	})
}

// IssueWriteRangesEpoch is IssueWriteRanges with an epoch stamp: the
// peer applies the splice only onto the immediate-predecessor image
// (see ObjectStore.WriteRangeEpoch); a stale base completes done with
// ErrStaleRangeBase so the replication layer can mark the member
// divergent and schedule a full-object resync.
func (c *PipelinedClient) IssueWriteRangesEpoch(ds, idx int, epoch uint64, src []byte, exts []rdma.Extent, done func(error)) {
	if !rangeWritable(src, exts) {
		c.IssueWriteEpoch(ds, idx, epoch, src, done)
		return
	}
	c.enqueue(&pipeOp{
		write: true, wantEp: true, ds: uint32(ds), idx: uint32(idx),
		epoch: epoch, data: src, exts: exts, done: done,
	})
}

// IssueWriteRanges implements RangeWriteStore over the replaceable
// client; a fallback serial client ships the full object.
func (r *Resilient) IssueWriteRanges(ds, idx int, src []byte, exts []rdma.Extent, done func(error)) {
	c, err := r.client()
	if err != nil {
		done(err)
		return
	}
	if pc, ok := c.(*PipelinedClient); ok {
		pc.IssueWriteRanges(ds, idx, src, exts, func(err error) {
			if err != nil {
				r.retire(pc)
			}
			done(err)
		})
		return
	}
	r.IssueWrite(ds, idx, src, done)
}

// IssueWriteRangesEpoch forwards the epoch-stamped range write over the
// replaceable client. ErrStaleRangeBase is an application-level NAK
// from a healthy session (the peer's base image missed an epoch), so it
// does not retire the client; transport failures do.
func (r *Resilient) IssueWriteRangesEpoch(ds, idx int, epoch uint64, src []byte, exts []rdma.Extent, done func(error)) {
	c, err := r.client()
	if err != nil {
		done(err)
		return
	}
	pc, ok := c.(*PipelinedClient)
	if !ok {
		r.retireFallback(c)
		done(ErrEpochUnsupported)
		return
	}
	pc.IssueWriteRangesEpoch(ds, idx, epoch, src, exts, func(err error) {
		if err != nil && !errors.Is(err, ErrStaleRangeBase) {
			r.retire(pc)
		}
		done(err)
	})
}

// compressInto applies the client-side compression decision to one
// outgoing object: all-zero detection first, then — when compress is
// set (the session negotiated FeatCompress) and the adaptive policy
// expects the DS to shrink — an LZ pass into a pooled buffer. It
// returns the scheme, the wire bytes (nil for SchemeZero; a pooled
// buffer the caller must PutBuf for SchemeLZ; src itself for
// SchemeRaw) and whether the returned slice is pooled. Called by the
// flusher with c.mu held — it must not touch the lock.
func (c *PipelinedClient) compressInto(ds uint32, src []byte, compress bool) (scheme uint8, wire []byte, pooled bool) {
	if rdma.IsAllZero(src) {
		return rdma.SchemeZero, nil, false
	}
	if !compress || !c.cpolicy.shouldCompress(ds) {
		return rdma.SchemeRaw, src, false
	}
	buf := rdma.GetBuf(rdma.CompressBound(len(src)))
	n, ok := rdma.LZCompress(buf, src)
	if !ok || n >= len(src) {
		rdma.PutBuf(buf)
		c.cpolicy.observe(ds, len(src), len(src))
		if m := c.metrics; m != nil && len(src) > 0 {
			m.wire.observeRatio(1000)
		}
		return rdma.SchemeRaw, src, false
	}
	c.cpolicy.observe(ds, len(src), n)
	if m := c.metrics; m != nil {
		m.wire.observeRatio(uint64(n) * 1000 / uint64(len(src)))
	}
	return rdma.SchemeLZ, buf[:n], true
}

// compactWriteReq builds one compact write tuple from a queued op:
// range ops first gather their extents' bytes out of the full image,
// then the compression decision runs on whatever ships. Pooled buffers
// are appended to *bufs; the caller releases them once the batch is
// encoded (the encoder copies every blob into the frame payload).
// Called by the flusher with c.mu held.
func (c *PipelinedClient) compactWriteReq(op *pipeOp, compress bool, bufs *[][]byte) rdma.WriteReqC {
	r := rdma.WriteReqC{DS: op.ds, Idx: op.idx, Epoch: op.epoch}
	src := op.data
	if op.exts != nil {
		r.ObjSize = uint32(len(op.data))
		r.Extents = op.exts
		raw := 0
		for _, e := range op.exts {
			raw += int(e.Len)
		}
		g := rdma.GetBuf(raw)
		*bufs = append(*bufs, g)
		off := 0
		for _, e := range op.exts {
			off += copy(g[off:off+int(e.Len)], op.data[e.Off:e.Off+e.Len])
		}
		src = g[:raw]
	}
	scheme, wire, pooled := c.compressInto(op.ds, src, compress)
	if pooled {
		*bufs = append(*bufs, wire)
	}
	r.Scheme = scheme
	r.RawLen = uint32(len(src))
	r.Data = wire
	return r
}

// CompactCapable reports whether the live session negotiated the
// compact wire tier (advisory, like EpochCapable).
func (c *PipelinedClient) CompactCapable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil && c.compact
}
