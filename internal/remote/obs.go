package remote

import (
	"strconv"
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/stats"
)

// Metric names exported by the remote memory node. Latencies are
// wall-clock (this layer runs on real sockets, unlike farmem's virtual
// cycles), hence the _ns suffix.
const (
	// Server side: one histogram per verb, observed around the full
	// handle (decode + store access + response encode).
	MetricReadNS  = "cards_remote_read_ns"
	MetricWriteNS = "cards_remote_write_ns"
	MetricPingNS  = "cards_remote_ping_ns"

	MetricReads  = "cards_remote_reads_total"
	MetricWrites = "cards_remote_writes_total"
	MetricErrors = "cards_remote_errors_total"

	// Wire bytes as framed by the rdma transport (header included).
	MetricBytesIn  = "cards_remote_bytes_in_total"
	MetricBytesOut = "cards_remote_bytes_out_total"

	// MetricInflight counts requests currently being served across all
	// connections; MetricConns the open connections.
	MetricInflight   = "cards_remote_inflight_requests"
	MetricConns      = "cards_remote_connections"
	MetricConnsTotal = "cards_remote_connections_total"

	// MetricResidentObjects is the far-tier population, published by
	// ObsSnapshot.
	MetricResidentObjects = "cards_remote_resident_objects"

	// Client side mirrors of the verb latencies, measured around the
	// whole round trip (request write + response read). On the pipelined
	// client, read/write latencies span enqueue to completion.
	MetricClientReadNS  = "cards_remote_client_read_ns"
	MetricClientWriteNS = "cards_remote_client_write_ns"
	MetricClientPingNS  = "cards_remote_client_ping_ns"

	// Pipelined data path: batch frames served and their sizes (reads
	// per READBATCH) on the server; in-flight window depth and doorbell
	// batch sizes on the client.
	MetricReadBatches     = "cards_remote_read_batches_total"
	MetricBatchReads      = "cards_remote_batch_reads"
	MetricClientInflight  = "cards_remote_client_inflight_ops"
	MetricClientBatchSize = "cards_remote_client_batch_reads"

	// Write-back pipeline: WRITEBATCH frames served and their sizes
	// (writes per batch) on the server; the client's write-window depth
	// and per-doorbell write batch sizes.
	MetricWriteBatches         = "cards_remote_write_batches_total"
	MetricBatchWrites          = "cards_remote_batch_writes"
	MetricClientInflightWrites = "cards_remote_client_inflight_writes"
	MetricClientWriteBatchSize = "cards_remote_client_batch_writes"

	// Traversal offload: CHASEBATCH frames served, traversal programs
	// executed, and the hops walked on the client's behalf — each hop is
	// a round trip the session did not pay.
	MetricChaseBatches = "cards_remote_chase_batches_total"
	MetricChases       = "cards_remote_chases_total"
	MetricChaseHops    = "cards_remote_chase_hops_total"
	MetricChaseNS      = "cards_remote_chase_ns"

	// Fault tolerance (both clients): idempotent retries, successful
	// redials, round trips that hit their deadline, writes whose outcome
	// the transport could not determine, and reads replayed onto a fresh
	// connection after a reconnect.
	MetricClientRetries         = "cards_remote_client_retries_total"
	MetricClientReconnects      = "cards_remote_client_reconnects_total"
	MetricClientTimeouts        = "cards_remote_client_timeouts_total"
	MetricClientUncertainWrites = "cards_remote_client_uncertain_writes_total"
	MetricClientReplayedReads   = "cards_remote_client_replayed_reads_total"

	// Latency attribution (FeatTrace sessions only). Every completed op
	// decomposes into four clock-offset-free durations — client queue
	// (enqueue to doorbell), wire (RTT minus the server-reported busy
	// time, both flight directions), server queue (receive to worker
	// dispatch), and server service — one histogram per (ds, shard,
	// component), all in microseconds, plus the op count the
	// decomposition covers.
	MetricAttribUS  = "cards_attrib_us"
	MetricAttribOps = "cards_attrib_ops_total"
)

// Attribution component label values.
const (
	AttribClientQueue   = "client_queue"
	AttribWire          = "wire"
	AttribServerQueue   = "server_queue"
	AttribServerService = "server_service"
)

// serverMetrics caches the registry series the hot request loop touches,
// so serving a verb never takes the registry map lock.
type serverMetrics struct {
	reads, writes, errors *stats.Counter
	bytesIn, bytesOut     *stats.Counter
	connsTotal            *stats.Counter
	readBatches           *stats.Counter
	writeBatches          *stats.Counter
	chaseBatches          *stats.Counter
	chases, chaseHops     *stats.Counter
	inflight, conns       *stats.Gauge
	readNS, writeNS       *stats.Histogram
	pingNS                *stats.Histogram
	batchReads            *stats.Histogram
	batchWrites           *stats.Histogram
	chaseNS               *stats.Histogram
	wire                  *wireMetrics
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reads:        reg.Counter(MetricReads),
		writes:       reg.Counter(MetricWrites),
		errors:       reg.Counter(MetricErrors),
		bytesIn:      reg.Counter(MetricBytesIn),
		bytesOut:     reg.Counter(MetricBytesOut),
		connsTotal:   reg.Counter(MetricConnsTotal),
		readBatches:  reg.Counter(MetricReadBatches),
		writeBatches: reg.Counter(MetricWriteBatches),
		chaseBatches: reg.Counter(MetricChaseBatches),
		chases:       reg.Counter(MetricChases),
		chaseHops:    reg.Counter(MetricChaseHops),
		inflight:     reg.Gauge(MetricInflight),
		conns:        reg.Gauge(MetricConns),
		readNS:       reg.Histogram(MetricReadNS),
		writeNS:      reg.Histogram(MetricWriteNS),
		pingNS:       reg.Histogram(MetricPingNS),
		batchReads:   reg.Histogram(MetricBatchReads),
		batchWrites:  reg.Histogram(MetricBatchWrites),
		chaseNS:      reg.Histogram(MetricChaseNS),
		wire:         newWireMetrics(reg),
	}
}

// Obs returns the server's metric registry.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Tracer returns the server's ring tracer (nil unless configured).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// ObsSnapshot publishes the point-in-time gauges only the snapshot
// moment can know (resident object population) and returns a snapshot
// of the whole registry.
func (s *Server) ObsSnapshot() *obs.Snapshot {
	s.reg.Gauge(MetricResidentObjects).Set(int64(s.Store.Len()))
	return s.reg.Snapshot()
}

// observeVerb records one served request: latency into the per-verb
// histogram and a span into the trace ring (category "remote", one trace
// thread per connection). trace, when non-zero, is the sampled
// distributed trace ID the request carried; it links the server span to
// the client's tree.
func (s *Server) observeVerb(op rdma.Op, connID int, start time.Time, startUS uint64, ds, idx int64, trace uint64) {
	ns := uint64(time.Since(start).Nanoseconds())
	switch op {
	case rdma.OpRead:
		s.metrics.reads.Inc()
		s.metrics.readNS.Observe(ns)
	case rdma.OpWrite, rdma.OpWriteTag:
		s.metrics.writes.Inc()
		s.metrics.writeNS.Observe(ns)
	case rdma.OpPing:
		s.metrics.pingNS.Observe(ns)
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.TraceEvent{
			TS:       startUS,
			Dur:      ns / 1000,
			Cat:      "remote",
			Name:     op.String(),
			TID:      connID,
			Trace:    trace,
			Arg1Name: "ds", Arg1: ds,
			Arg2Name: "obj", Arg2: idx,
		})
	}
}

// observeBatch records one served READBATCH: the batch-size histogram,
// the per-read counters, and one trace span carrying the batch size and
// the distributed trace ID (0 when the batch carried none).
func (s *Server) observeBatch(connID, n int, start time.Time, startUS uint64, trace uint64) {
	ns := uint64(time.Since(start).Nanoseconds())
	s.metrics.readBatches.Inc()
	s.metrics.batchReads.Observe(uint64(n))
	s.metrics.reads.Add(uint64(n))
	s.metrics.readNS.Observe(ns)
	if s.tracer != nil {
		s.tracer.Emit(obs.TraceEvent{
			TS:       startUS,
			Dur:      ns / 1000,
			Cat:      "remote",
			Name:     rdma.OpReadBatch.String(),
			TID:      connID,
			Trace:    trace,
			Arg1Name: "reads", Arg1: int64(n),
		})
	}
}

// observeWriteBatch records one served WRITEBATCH: the batch-size
// histogram, the per-write counters, and one trace span carrying the
// batch size and the distributed trace ID (0 when the batch carried
// none).
func (s *Server) observeWriteBatch(connID, n int, start time.Time, startUS uint64, trace uint64) {
	ns := uint64(time.Since(start).Nanoseconds())
	s.metrics.writeBatches.Inc()
	s.metrics.batchWrites.Observe(uint64(n))
	s.metrics.writes.Add(uint64(n))
	s.metrics.writeNS.Observe(ns)
	if s.tracer != nil {
		s.tracer.Emit(obs.TraceEvent{
			TS:       startUS,
			Dur:      ns / 1000,
			Cat:      "remote",
			Name:     rdma.OpWriteBatch.String(),
			TID:      connID,
			Trace:    trace,
			Arg1Name: "writes", Arg1: int64(n),
		})
	}
}

// clientMetrics caches the client-side registry series.
type clientMetrics struct {
	readNS, writeNS, pingNS *stats.Histogram
	bytesIn, bytesOut       *stats.Counter
	retries, reconnects     *stats.Counter
	timeouts                *stats.Counter
	uncertainWrites         *stats.Counter
}

// SetObs attaches a registry to the client; round trips then observe
// per-verb latencies and wire bytes. Call before issuing requests.
func (c *Client) SetObs(reg *obs.Registry) {
	if reg == nil {
		c.metrics = nil
		return
	}
	c.metrics = &clientMetrics{
		readNS:          reg.Histogram(MetricClientReadNS),
		writeNS:         reg.Histogram(MetricClientWriteNS),
		pingNS:          reg.Histogram(MetricClientPingNS),
		bytesIn:         reg.Counter(MetricBytesIn),
		bytesOut:        reg.Counter(MetricBytesOut),
		retries:         reg.Counter(MetricClientRetries),
		reconnects:      reg.Counter(MetricClientReconnects),
		timeouts:        reg.Counter(MetricClientTimeouts),
		uncertainWrites: reg.Counter(MetricClientUncertainWrites),
	}
}

func (m *clientMetrics) observe(op rdma.Op, ns uint64) {
	switch op {
	case rdma.OpRead:
		m.readNS.Observe(ns)
	case rdma.OpWrite:
		m.writeNS.Observe(ns)
	case rdma.OpPing:
		m.pingNS.Observe(ns)
	}
}

// pipeMetrics caches the pipelined client's registry series. It is
// installed at construction (PipelineOpts.Obs) — before the background
// goroutines start — so the hot paths read it without synchronization.
type pipeMetrics struct {
	readNS, writeNS   *stats.Histogram
	batchReads        *stats.Histogram
	batchWrites       *stats.Histogram
	inflight          *stats.Gauge
	inflightWrites    *stats.Gauge
	bytesIn, bytesOut *stats.Counter
	reconnects        *stats.Counter
	timeouts          *stats.Counter
	uncertainWrites   *stats.Counter
	replayedReads     *stats.Counter
	wire              *wireMetrics
}

// attribCache holds the per-DS attribution series of one pipelined
// client. It is owned by the reader goroutine — the only writer — so
// the steady state is a lock-free, allocation-free map hit; the
// registry lock is taken once per data structure, at first sight.
type attribCache struct {
	reg   *obs.Registry
	shard string
	m     map[uint32]*dsAttrib
}

// dsAttrib caches one data structure's four component histograms and
// its op counter.
type dsAttrib struct {
	ops           *stats.Counter
	clientQueue   *stats.Histogram
	wire          *stats.Histogram
	serverQueue   *stats.Histogram
	serverService *stats.Histogram
}

// newAttribCache builds the cache; nil when reg is nil (attribution
// then disabled).
func newAttribCache(reg *obs.Registry, shard string) *attribCache {
	if reg == nil {
		return nil
	}
	return &attribCache{reg: reg, shard: shard, m: make(map[uint32]*dsAttrib)}
}

func (a *attribCache) get(ds uint32) *dsAttrib {
	if da, ok := a.m[ds]; ok {
		return da
	}
	dss := strconv.FormatUint(uint64(ds), 10)
	lbl := func(component string) []string {
		if a.shard == "" {
			return []string{"ds", dss, "component", component}
		}
		return []string{"ds", dss, "shard", a.shard, "component", component}
	}
	ops := []string{"ds", dss}
	if a.shard != "" {
		ops = append(ops, "shard", a.shard)
	}
	da := &dsAttrib{
		ops:           a.reg.Counter(MetricAttribOps, ops...),
		clientQueue:   a.reg.Histogram(MetricAttribUS, lbl(AttribClientQueue)...),
		wire:          a.reg.Histogram(MetricAttribUS, lbl(AttribWire)...),
		serverQueue:   a.reg.Histogram(MetricAttribUS, lbl(AttribServerQueue)...),
		serverService: a.reg.Histogram(MetricAttribUS, lbl(AttribServerService)...),
	}
	a.m[ds] = da
	return da
}

// observe feeds one completed op's decomposition into the DS's series.
func (a *attribCache) observe(ds uint32, cqUS, wireUS, sqUS, ssUS uint64) {
	if a == nil {
		return
	}
	da := a.get(ds)
	da.ops.Inc()
	da.clientQueue.Observe(cqUS)
	da.wire.Observe(wireUS)
	da.serverQueue.Observe(sqUS)
	da.serverService.Observe(ssUS)
}

func newPipeMetrics(reg *obs.Registry) *pipeMetrics {
	if reg == nil {
		return nil
	}
	return &pipeMetrics{
		readNS:          reg.Histogram(MetricClientReadNS),
		writeNS:         reg.Histogram(MetricClientWriteNS),
		batchReads:      reg.Histogram(MetricClientBatchSize),
		batchWrites:     reg.Histogram(MetricClientWriteBatchSize),
		inflight:        reg.Gauge(MetricClientInflight),
		inflightWrites:  reg.Gauge(MetricClientInflightWrites),
		bytesIn:         reg.Counter(MetricBytesIn),
		bytesOut:        reg.Counter(MetricBytesOut),
		reconnects:      reg.Counter(MetricClientReconnects),
		timeouts:        reg.Counter(MetricClientTimeouts),
		uncertainWrites: reg.Counter(MetricClientUncertainWrites),
		replayedReads:   reg.Counter(MetricClientReplayedReads),
		wire:            newWireMetrics(reg),
	}
}
