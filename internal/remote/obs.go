package remote

import (
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/stats"
)

// Metric names exported by the remote memory node. Latencies are
// wall-clock (this layer runs on real sockets, unlike farmem's virtual
// cycles), hence the _ns suffix.
const (
	// Server side: one histogram per verb, observed around the full
	// handle (decode + store access + response encode).
	MetricReadNS  = "cards_remote_read_ns"
	MetricWriteNS = "cards_remote_write_ns"
	MetricPingNS  = "cards_remote_ping_ns"

	MetricReads  = "cards_remote_reads_total"
	MetricWrites = "cards_remote_writes_total"
	MetricErrors = "cards_remote_errors_total"

	// Wire bytes as framed by the rdma transport (header included).
	MetricBytesIn  = "cards_remote_bytes_in_total"
	MetricBytesOut = "cards_remote_bytes_out_total"

	// MetricInflight counts requests currently being served across all
	// connections; MetricConns the open connections.
	MetricInflight   = "cards_remote_inflight_requests"
	MetricConns      = "cards_remote_connections"
	MetricConnsTotal = "cards_remote_connections_total"

	// MetricResidentObjects is the far-tier population, published by
	// ObsSnapshot.
	MetricResidentObjects = "cards_remote_resident_objects"

	// Client side mirrors of the verb latencies, measured around the
	// whole round trip (request write + response read). On the pipelined
	// client, read/write latencies span enqueue to completion.
	MetricClientReadNS  = "cards_remote_client_read_ns"
	MetricClientWriteNS = "cards_remote_client_write_ns"
	MetricClientPingNS  = "cards_remote_client_ping_ns"

	// Pipelined data path: batch frames served and their sizes (reads
	// per READBATCH) on the server; in-flight window depth and doorbell
	// batch sizes on the client.
	MetricReadBatches     = "cards_remote_read_batches_total"
	MetricBatchReads      = "cards_remote_batch_reads"
	MetricClientInflight  = "cards_remote_client_inflight_ops"
	MetricClientBatchSize = "cards_remote_client_batch_reads"

	// Write-back pipeline: WRITEBATCH frames served and their sizes
	// (writes per batch) on the server; the client's write-window depth
	// and per-doorbell write batch sizes.
	MetricWriteBatches         = "cards_remote_write_batches_total"
	MetricBatchWrites          = "cards_remote_batch_writes"
	MetricClientInflightWrites = "cards_remote_client_inflight_writes"
	MetricClientWriteBatchSize = "cards_remote_client_batch_writes"

	// Fault tolerance (both clients): idempotent retries, successful
	// redials, round trips that hit their deadline, writes whose outcome
	// the transport could not determine, and reads replayed onto a fresh
	// connection after a reconnect.
	MetricClientRetries         = "cards_remote_client_retries_total"
	MetricClientReconnects      = "cards_remote_client_reconnects_total"
	MetricClientTimeouts        = "cards_remote_client_timeouts_total"
	MetricClientUncertainWrites = "cards_remote_client_uncertain_writes_total"
	MetricClientReplayedReads   = "cards_remote_client_replayed_reads_total"
)

// serverMetrics caches the registry series the hot request loop touches,
// so serving a verb never takes the registry map lock.
type serverMetrics struct {
	reads, writes, errors *stats.Counter
	bytesIn, bytesOut     *stats.Counter
	connsTotal            *stats.Counter
	readBatches           *stats.Counter
	writeBatches          *stats.Counter
	inflight, conns       *stats.Gauge
	readNS, writeNS       *stats.Histogram
	pingNS                *stats.Histogram
	batchReads            *stats.Histogram
	batchWrites           *stats.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reads:        reg.Counter(MetricReads),
		writes:       reg.Counter(MetricWrites),
		errors:       reg.Counter(MetricErrors),
		bytesIn:      reg.Counter(MetricBytesIn),
		bytesOut:     reg.Counter(MetricBytesOut),
		connsTotal:   reg.Counter(MetricConnsTotal),
		readBatches:  reg.Counter(MetricReadBatches),
		writeBatches: reg.Counter(MetricWriteBatches),
		inflight:     reg.Gauge(MetricInflight),
		conns:        reg.Gauge(MetricConns),
		readNS:       reg.Histogram(MetricReadNS),
		writeNS:      reg.Histogram(MetricWriteNS),
		pingNS:       reg.Histogram(MetricPingNS),
		batchReads:   reg.Histogram(MetricBatchReads),
		batchWrites:  reg.Histogram(MetricBatchWrites),
	}
}

// Obs returns the server's metric registry.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Tracer returns the server's ring tracer (nil unless configured).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// ObsSnapshot publishes the point-in-time gauges only the snapshot
// moment can know (resident object population) and returns a snapshot
// of the whole registry.
func (s *Server) ObsSnapshot() *obs.Snapshot {
	s.reg.Gauge(MetricResidentObjects).Set(int64(s.Store.Len()))
	return s.reg.Snapshot()
}

// observeVerb records one served request: latency into the per-verb
// histogram and a span into the trace ring (category "remote", one trace
// thread per connection).
func (s *Server) observeVerb(op rdma.Op, connID int, start time.Time, startUS uint64, ds, idx int64) {
	ns := uint64(time.Since(start).Nanoseconds())
	switch op {
	case rdma.OpRead:
		s.metrics.reads.Inc()
		s.metrics.readNS.Observe(ns)
	case rdma.OpWrite, rdma.OpWriteTag:
		s.metrics.writes.Inc()
		s.metrics.writeNS.Observe(ns)
	case rdma.OpPing:
		s.metrics.pingNS.Observe(ns)
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.TraceEvent{
			TS:       startUS,
			Dur:      ns / 1000,
			Cat:      "remote",
			Name:     op.String(),
			TID:      connID,
			Arg1Name: "ds", Arg1: ds,
			Arg2Name: "obj", Arg2: idx,
		})
	}
}

// observeBatch records one served READBATCH: the batch-size histogram,
// the per-read counters, and one trace span carrying the batch size.
func (s *Server) observeBatch(connID, n int, start time.Time, startUS uint64) {
	ns := uint64(time.Since(start).Nanoseconds())
	s.metrics.readBatches.Inc()
	s.metrics.batchReads.Observe(uint64(n))
	s.metrics.reads.Add(uint64(n))
	s.metrics.readNS.Observe(ns)
	if s.tracer != nil {
		s.tracer.Emit(obs.TraceEvent{
			TS:       startUS,
			Dur:      ns / 1000,
			Cat:      "remote",
			Name:     rdma.OpReadBatch.String(),
			TID:      connID,
			Arg1Name: "reads", Arg1: int64(n),
		})
	}
}

// observeWriteBatch records one served WRITEBATCH: the batch-size
// histogram, the per-write counters, and one trace span carrying the
// batch size.
func (s *Server) observeWriteBatch(connID, n int, start time.Time, startUS uint64) {
	ns := uint64(time.Since(start).Nanoseconds())
	s.metrics.writeBatches.Inc()
	s.metrics.batchWrites.Observe(uint64(n))
	s.metrics.writes.Add(uint64(n))
	s.metrics.writeNS.Observe(ns)
	if s.tracer != nil {
		s.tracer.Emit(obs.TraceEvent{
			TS:       startUS,
			Dur:      ns / 1000,
			Cat:      "remote",
			Name:     rdma.OpWriteBatch.String(),
			TID:      connID,
			Arg1Name: "writes", Arg1: int64(n),
		})
	}
}

// clientMetrics caches the client-side registry series.
type clientMetrics struct {
	readNS, writeNS, pingNS *stats.Histogram
	bytesIn, bytesOut       *stats.Counter
	retries, reconnects     *stats.Counter
	timeouts                *stats.Counter
	uncertainWrites         *stats.Counter
}

// SetObs attaches a registry to the client; round trips then observe
// per-verb latencies and wire bytes. Call before issuing requests.
func (c *Client) SetObs(reg *obs.Registry) {
	if reg == nil {
		c.metrics = nil
		return
	}
	c.metrics = &clientMetrics{
		readNS:          reg.Histogram(MetricClientReadNS),
		writeNS:         reg.Histogram(MetricClientWriteNS),
		pingNS:          reg.Histogram(MetricClientPingNS),
		bytesIn:         reg.Counter(MetricBytesIn),
		bytesOut:        reg.Counter(MetricBytesOut),
		retries:         reg.Counter(MetricClientRetries),
		reconnects:      reg.Counter(MetricClientReconnects),
		timeouts:        reg.Counter(MetricClientTimeouts),
		uncertainWrites: reg.Counter(MetricClientUncertainWrites),
	}
}

func (m *clientMetrics) observe(op rdma.Op, ns uint64) {
	switch op {
	case rdma.OpRead:
		m.readNS.Observe(ns)
	case rdma.OpWrite:
		m.writeNS.Observe(ns)
	case rdma.OpPing:
		m.pingNS.Observe(ns)
	}
}

// pipeMetrics caches the pipelined client's registry series. It is
// installed at construction (PipelineOpts.Obs) — before the background
// goroutines start — so the hot paths read it without synchronization.
type pipeMetrics struct {
	readNS, writeNS   *stats.Histogram
	batchReads        *stats.Histogram
	batchWrites       *stats.Histogram
	inflight          *stats.Gauge
	inflightWrites    *stats.Gauge
	bytesIn, bytesOut *stats.Counter
	reconnects        *stats.Counter
	timeouts          *stats.Counter
	uncertainWrites   *stats.Counter
	replayedReads     *stats.Counter
}

func newPipeMetrics(reg *obs.Registry) *pipeMetrics {
	if reg == nil {
		return nil
	}
	return &pipeMetrics{
		readNS:          reg.Histogram(MetricClientReadNS),
		writeNS:         reg.Histogram(MetricClientWriteNS),
		batchReads:      reg.Histogram(MetricClientBatchSize),
		batchWrites:     reg.Histogram(MetricClientWriteBatchSize),
		inflight:        reg.Gauge(MetricClientInflight),
		inflightWrites:  reg.Gauge(MetricClientInflightWrites),
		bytesIn:         reg.Counter(MetricBytesIn),
		bytesOut:        reg.Counter(MetricBytesOut),
		reconnects:      reg.Counter(MetricClientReconnects),
		timeouts:        reg.Counter(MetricClientTimeouts),
		uncertainWrites: reg.Counter(MetricClientUncertainWrites),
		replayedReads:   reg.Counter(MetricClientReplayedReads),
	}
}
