package remote

import (
	"time"

	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/stats"
)

// Metric names exported by the remote memory node. Latencies are
// wall-clock (this layer runs on real sockets, unlike farmem's virtual
// cycles), hence the _ns suffix.
const (
	// Server side: one histogram per verb, observed around the full
	// handle (decode + store access + response encode).
	MetricReadNS  = "cards_remote_read_ns"
	MetricWriteNS = "cards_remote_write_ns"
	MetricPingNS  = "cards_remote_ping_ns"

	MetricReads  = "cards_remote_reads_total"
	MetricWrites = "cards_remote_writes_total"
	MetricErrors = "cards_remote_errors_total"

	// Wire bytes as framed by the rdma transport (header included).
	MetricBytesIn  = "cards_remote_bytes_in_total"
	MetricBytesOut = "cards_remote_bytes_out_total"

	// MetricInflight counts requests currently being served across all
	// connections; MetricConns the open connections.
	MetricInflight   = "cards_remote_inflight_requests"
	MetricConns      = "cards_remote_connections"
	MetricConnsTotal = "cards_remote_connections_total"

	// MetricResidentObjects is the far-tier population, published by
	// ObsSnapshot.
	MetricResidentObjects = "cards_remote_resident_objects"

	// Client side mirrors of the verb latencies, measured around the
	// whole round trip (request write + response read).
	MetricClientReadNS  = "cards_remote_client_read_ns"
	MetricClientWriteNS = "cards_remote_client_write_ns"
	MetricClientPingNS  = "cards_remote_client_ping_ns"
)

// serverMetrics caches the registry series the hot request loop touches,
// so serving a verb never takes the registry map lock.
type serverMetrics struct {
	reads, writes, errors *stats.Counter
	bytesIn, bytesOut     *stats.Counter
	connsTotal            *stats.Counter
	inflight, conns       *stats.Gauge
	readNS, writeNS       *stats.Histogram
	pingNS                *stats.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reads:      reg.Counter(MetricReads),
		writes:     reg.Counter(MetricWrites),
		errors:     reg.Counter(MetricErrors),
		bytesIn:    reg.Counter(MetricBytesIn),
		bytesOut:   reg.Counter(MetricBytesOut),
		connsTotal: reg.Counter(MetricConnsTotal),
		inflight:   reg.Gauge(MetricInflight),
		conns:      reg.Gauge(MetricConns),
		readNS:     reg.Histogram(MetricReadNS),
		writeNS:    reg.Histogram(MetricWriteNS),
		pingNS:     reg.Histogram(MetricPingNS),
	}
}

// Obs returns the server's metric registry.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Tracer returns the server's ring tracer (nil unless configured).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// ObsSnapshot publishes the point-in-time gauges only the snapshot
// moment can know (resident object population) and returns a snapshot
// of the whole registry.
func (s *Server) ObsSnapshot() *obs.Snapshot {
	s.reg.Gauge(MetricResidentObjects).Set(int64(s.Store.Len()))
	return s.reg.Snapshot()
}

// observeVerb records one served request: latency into the per-verb
// histogram and a span into the trace ring (category "remote", one trace
// thread per connection).
func (s *Server) observeVerb(op rdma.Op, connID int, start time.Time, startUS uint64, ds, idx int64) {
	ns := uint64(time.Since(start).Nanoseconds())
	switch op {
	case rdma.OpRead:
		s.metrics.reads.Inc()
		s.metrics.readNS.Observe(ns)
	case rdma.OpWrite:
		s.metrics.writes.Inc()
		s.metrics.writeNS.Observe(ns)
	case rdma.OpPing:
		s.metrics.pingNS.Observe(ns)
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.TraceEvent{
			TS:       startUS,
			Dur:      ns / 1000,
			Cat:      "remote",
			Name:     op.String(),
			TID:      connID,
			Arg1Name: "ds", Arg1: ds,
			Arg2Name: "obj", Arg2: idx,
		})
	}
}

// clientMetrics caches the client-side registry series.
type clientMetrics struct {
	readNS, writeNS, pingNS *stats.Histogram
	bytesIn, bytesOut       *stats.Counter
}

// SetObs attaches a registry to the client; round trips then observe
// per-verb latencies and wire bytes. Call before issuing requests.
func (c *Client) SetObs(reg *obs.Registry) {
	if reg == nil {
		c.metrics = nil
		return
	}
	c.metrics = &clientMetrics{
		readNS:   reg.Histogram(MetricClientReadNS),
		writeNS:  reg.Histogram(MetricClientWriteNS),
		pingNS:   reg.Histogram(MetricClientPingNS),
		bytesIn:  reg.Counter(MetricBytesIn),
		bytesOut: reg.Counter(MetricBytesOut),
	}
}

func (m *clientMetrics) observe(op rdma.Op, ns uint64) {
	switch op {
	case rdma.OpRead:
		m.readNS.Observe(ns)
	case rdma.OpWrite:
		m.writeNS.Observe(ns)
	case rdma.OpPing:
		m.pingNS.Observe(ns)
	}
}
