package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"cards/internal/faultnet"
	"cards/internal/rdma"
	"cards/internal/testutil"
)

// TestSerialClientDeadline: a server that accepts and then never
// replies must not hang the serial client forever — the round trip
// returns ErrTimeout (which also matches os.ErrDeadlineExceeded).
func TestSerialClientDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn) // swallow the request, never answer
	}()

	c, err := DialOpts(ln.Addr().String(), ClientOpts{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Ping()
	if err == nil {
		t.Fatal("ping against a mute server should time out")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, should match os.ErrDeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timed out after %v, deadline did not bound the round trip", d)
	}
}

// TestSerialClientRetriesThroughCuts: reads and pings retry across
// injected disconnects and all complete correctly.
func TestSerialClientRetriesThroughCuts(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Store.Write(1, 7, []byte{0xAB, 0xCD, 0xEF, 0x01})

	proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, faultnet.Config{
		Seed:          11,
		CutEveryBytes: 512, // a few round trips per connection life
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := DialOpts(proxy.Addr(), ClientOpts{
		Timeout:   time.Second,
		RetryMax:  50,
		RetryBase: time.Millisecond,
		RetryCap:  5 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dst := make([]byte, 4)
	for i := 0; i < 200; i++ {
		if err := c.ReadObj(1, 7, dst); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if dst[0] != 0xAB || dst[3] != 0x01 {
			t.Fatalf("read %d returned corrupt data %x", i, dst)
		}
	}
	if proxy.Cuts() == 0 {
		t.Fatal("proxy never cut the stream; test exercised nothing")
	}
}

// TestSerialClientCRCSurvivesCorruption: a fault-tolerant serial dial
// negotiates checksummed framing, so byte flips on the link surface as
// transport errors (retried on a fresh conn) instead of desynchronizing
// the stream into a definitive — and fatal — "unexpected op" ERR reply.
func TestSerialClientCRCSurvivesCorruption(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Store.Write(1, 7, []byte{0xAB, 0xCD, 0xEF, 0x01})

	proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, faultnet.Config{
		Seed:        13,
		CorruptProb: 0.05, // one flipped byte per ~20 forwarded chunks
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	c, err := DialOpts(proxy.Addr(), ClientOpts{
		// A short deadline bounds the wedged-stream case: a corrupted
		// length field can leave the server blocked mid-frame.
		Timeout:   300 * time.Millisecond,
		RetryMax:  50,
		RetryBase: time.Millisecond,
		RetryCap:  5 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dst := make([]byte, 4)
	for i := 0; i < 300; i++ {
		if err := c.ReadObj(1, 7, dst); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if dst[0] != 0xAB || dst[3] != 0x01 {
			t.Fatalf("read %d returned corrupt data %x", i, dst)
		}
	}
	if proxy.Corruptions() == 0 {
		t.Fatal("proxy never corrupted a chunk; test exercised nothing")
	}
}

// TestSerialWriteUncertain: a write that dies mid round trip must NOT
// be silently retried — the caller gets ErrUncertainWrite wrapping the
// transport cause.
func TestSerialWriteUncertain(t *testing.T) {
	cli, srv := net.Pipe()
	go func() {
		// Read the request, then hang up without acking.
		rdma.ReadFrame(srv)
		srv.Close()
	}()
	redials := 0
	c := NewClientConnOpts(cli, ClientOpts{
		Timeout:  time.Second,
		RetryMax: 5,
		Redial: func() (io.ReadWriteCloser, error) {
			redials++
			return nil, errors.New("no redial in this test")
		},
	})
	defer c.Close()
	err := c.WriteObj(2, 3, []byte{1, 2, 3, 4})
	if !errors.Is(err, ErrUncertainWrite) {
		t.Fatalf("err = %v, want ErrUncertainWrite", err)
	}
	if redials != 0 {
		t.Fatalf("client redialed %d times for an uncertain write; must not silently retry", redials)
	}
}

// TestPipelinedReconnectReplaysReads drives the pipelined client
// through a chaos proxy that keeps cutting the stream: every read must
// still complete with correct data, transparently replayed across
// reconnects.
func TestPipelinedReconnectReplaysReads(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const objs = 64
	for i := 0; i < objs; i++ {
		srv.Store.Write(1, uint32(i), []byte{byte(i), byte(i ^ 0xFF), byte(i * 3), 0x5A})
	}

	proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, faultnet.Config{
		Seed:          23,
		CutEveryBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sc, err := DialAutoOpts(proxy.Addr(), DialConfig{
		Timeout:   2 * time.Second,
		RetryMax:  50,
		RetryBase: time.Millisecond,
		RetryCap:  5 * time.Millisecond,
		Seed:      5,
		Window:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, ok := sc.(*PipelinedClient); !ok {
		t.Fatalf("expected a pipelined client against our own server, got %T", sc)
	}

	dst := make([]byte, 4)
	for round := 0; round < 20; round++ {
		for i := 0; i < objs; i++ {
			if err := sc.ReadObj(1, i, dst); err != nil {
				t.Fatalf("round %d read %d: %v", round, i, err)
			}
			if dst[0] != byte(i) || dst[3] != 0x5A {
				t.Fatalf("round %d read %d returned corrupt data %x", round, i, dst)
			}
		}
	}
	if proxy.Cuts() == 0 {
		t.Fatal("proxy never cut the stream; test exercised nothing")
	}
}

// TestPipelinedWriteUncertainOnCut: pipelined writes racing a cut must
// either succeed or surface ErrUncertainWrite — never a silent replay,
// never a hang.
func TestPipelinedWriteUncertainOnCut(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, faultnet.Config{
		Seed:          31,
		CutEveryBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sc, err := DialAutoOpts(proxy.Addr(), DialConfig{
		Timeout:   2 * time.Second,
		RetryMax:  50,
		RetryBase: time.Millisecond,
		RetryCap:  5 * time.Millisecond,
		Window:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	buf := []byte{9, 8, 7, 6}
	var uncertains, acked int
	for i := 0; i < 300; i++ {
		err := sc.WriteObj(3, i%16, buf)
		switch {
		case err == nil:
			acked++
		case errors.Is(err, ErrUncertainWrite):
			uncertains++
		default:
			t.Fatalf("write %d: unexpected error %v", i, err)
		}
	}
	if acked == 0 {
		t.Fatal("no write ever succeeded through the chaos proxy")
	}
	if proxy.Cuts() > 0 && uncertains == 0 {
		t.Logf("note: %d cuts but no uncertain writes (cuts landed between writes)", proxy.Cuts())
	}
}

// TestPipelinedCloseDoorbellRace is the -race regression for Close
// racing the flusher's doorbell write and the reader: hammer reads from
// several goroutines, Close mid-flight, and require every op to
// complete (no hang, no panic, no leaked reader).
func TestPipelinedCloseDoorbellRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		srv := NewServer()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := DialPipelined(addr, PipelineOpts{Window: 8})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				dst := make([]byte, 8)
				for i := 0; ; i++ {
					if err := c.ReadObj(g, i%32, dst); err != nil {
						if !errors.Is(err, ErrClientClosed) {
							panic(fmt.Sprintf("iter %d: read failed with %v, want ErrClientClosed", iter, err))
						}
						return
					}
				}
			}(g)
		}
		time.Sleep(time.Duration(iter%5) * time.Millisecond)
		if err := c.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		wg.Wait() // every hammer goroutine observed ErrClientClosed
		srv.Close()
	}
}

// TestPipelinedCloseDuringReconnect: Close while the client is inside
// its redial backoff must abort the reconnect promptly and complete
// everything outstanding with ErrClientClosed.
func TestPipelinedCloseDuringReconnect(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialPipelined(addr, PipelineOpts{
		Timeout:   time.Second,
		RetryMax:  1000,
		RetryBase: 50 * time.Millisecond,
		RetryCap:  50 * time.Millisecond,
		Redial: func() (io.ReadWriteCloser, error) {
			return nil, errors.New("server is gone")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain(10 * time.Millisecond) // kill the server: the client enters its redial loop

	errc := make(chan error, 1)
	go func() {
		dst := make([]byte, 8)
		errc <- c.ReadObj(0, 0, dst)
	}()
	time.Sleep(20 * time.Millisecond) // let the read hit the dead conn
	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung while a reconnect was in progress")
	}
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, ErrClientClosed) {
			t.Fatalf("read completed with %v, want nil or ErrClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight read never completed after Close")
	}
}

// TestServerDrain: a drain with nothing in flight reports success and
// leaves the listener closed.
func TestServerDrain(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if !srv.Drain(time.Second) {
		t.Fatal("drain with an idle connection should succeed")
	}
	// The connection was force-closed by the drain; the client notices.
	if err := c.Ping(); err == nil {
		t.Fatal("ping after drain should fail")
	}
	c.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial after drain should fail (listener closed)")
	}
}

// TestCRCSessionEndToEnd: the real client and server negotiate the CRC
// feature and keep working — this pins the framing switch on both
// sides.
func TestCRCSessionEndToEnd(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPipelined(addr, PipelineOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.mu.Lock()
	crc := c.crc
	c.mu.Unlock()
	if !crc {
		t.Fatal("client should have negotiated checksummed framing with our own server")
	}
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := c.WriteObj(5, 9, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := c.ReadObj(5, 9, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CRC session read back %x, want %x", got, want)
		}
	}
}

// TestSerialClientCRCDowngradeAgainstLegacyServer: a fault-tolerant
// serial client always asks for checksummed framing, but a legacy
// server answers the feature PING with an empty OK — the session must
// downgrade to plain framing and keep working. A forced disconnect then
// makes redialLocked renegotiate on the fresh stream, which must reach
// the same downgrade (not assume the old session's answer).
func TestSerialClientCRCDowngradeAgainstLegacyServer(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	store := NewObjectStore()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var (
		connMu sync.Mutex
		conns  []net.Conn
	)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			conns = append(conns, conn)
			connMu.Unlock()
			go legacyServe(conn, store)
		}
	}()
	defer func() {
		connMu.Lock()
		for _, c := range conns {
			c.Close()
		}
		connMu.Unlock()
	}()
	store.Write(1, 7, []byte{0xAB, 0xCD})

	// Timeout+RetryMax make the client fault tolerant, which is what arms
	// the CRC ask on every fresh connection.
	c, err := DialOpts(ln.Addr().String(), ClientOpts{
		Timeout: time.Second, RetryMax: 4, RetryBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.wantCRC {
		t.Fatal("fault-tolerant serial client should request checksummed framing")
	}
	if c.crc {
		t.Fatal("legacy server cannot checksum: session must downgrade to plain framing")
	}

	buf := make([]byte, 2)
	if err := c.ReadObj(1, 7, buf); err != nil || buf[0] != 0xAB || buf[1] != 0xCD {
		t.Fatalf("downgraded session read = %x, %v", buf, err)
	}
	if err := c.WriteObj(1, 8, []byte{0x11}); err != nil {
		t.Fatalf("downgraded session write: %v", err)
	}

	// Kill the server side of the session: the next idempotent op breaks,
	// redials, and renegotiates — landing on the same downgrade.
	connMu.Lock()
	for _, conn := range conns {
		conn.Close()
	}
	conns = conns[:0]
	connMu.Unlock()
	if err := c.ReadObj(1, 7, buf); err != nil {
		t.Fatalf("read after forced disconnect should retry through redial: %v", err)
	}
	if buf[0] != 0xAB || buf[1] != 0xCD {
		t.Fatalf("post-redial read = %x", buf)
	}
	if c.crc {
		t.Fatal("renegotiation against the legacy server must downgrade again")
	}
	if !c.wantCRC {
		t.Fatal("the downgrade must not clear the per-connection CRC ask")
	}
}

// TestPipelinedWriteOnlyStall is the stall-detector regression for the
// write window: a server that negotiates the full feature set and then
// goes mute leaves a WRITEBATCH unacknowledged with nothing in the
// *read* window. The stall detector must count in-flight writes too,
// cut the stream after Timeout, and complete the write with
// ErrUncertainWrite — not wait forever for an ack that will never come.
func TestPipelinedWriteOnlyStall(t *testing.T) {
	testutil.NoGoroutineLeaks(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				// Answer the feature ping so the pipelined session comes
				// up, then swallow every frame without replying.
				if _, err := rdma.ReadFrame(conn); err != nil {
					return
				}
				rdma.WriteFrame(conn, rdma.Frame{Op: rdma.OpOK,
					Payload: rdma.EncodeFeatures(rdma.FeatBatch | rdma.FeatCRC | rdma.FeatWriteBatch)})
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()

	c, err := DialPipelined(ln.Addr().String(), PipelineOpts{
		Timeout:   50 * time.Millisecond,
		RetryMax:  2,
		RetryBase: time.Millisecond,
		RetryCap:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.WriteObj(1, 2, []byte("stalled write"))
	if err == nil {
		t.Fatal("write against a mute server must not succeed")
	}
	if !errors.Is(err, ErrUncertainWrite) {
		t.Fatalf("err = %v, want ErrUncertainWrite", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("write unblocked only after %v: stall detector ignored the write window", d)
	}
}
