package shardmap

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cards/internal/farmem"
	"cards/internal/obs"
	"cards/internal/rdma"
	"cards/internal/stats"
)

// Per-shard metric names (label shard="<i>"), following the
// cards_<layer>_<name> scheme.
const (
	MetricShardReads      = "cards_shard_reads_total"
	MetricShardWrites     = "cards_shard_writes_total"
	MetricShardBytesIn    = "cards_shard_bytes_in_total"
	MetricShardBytesOut   = "cards_shard_bytes_out_total"
	MetricShardFailures   = "cards_shard_failures_total"
	MetricShardDegraded   = "cards_shard_degraded_ops_total"
	MetricShardTrips      = "cards_shard_breaker_trips_total"
	MetricShardRecoveries = "cards_shard_breaker_recoveries_total"
	MetricShardObjects    = "cards_shard_objects"
	MetricShardState      = "cards_shard_breaker_state"
)

// Options configures a ShardedStore.
type Options struct {
	// BreakerThreshold is the number of consecutive failures that trip
	// one shard's breaker open (independent of the other shards).
	// 0 disables per-shard breakers: every failure propagates raw.
	BreakerThreshold int
	// ProbeEvery is the wall-clock interval between liveness probes of
	// open shards; 0 means 250ms.
	ProbeEvery time.Duration
	// Obs receives the per-shard series; nil allocates a private
	// registry (reachable via ShardedStore.Obs).
	Obs *obs.Registry
}

// shard is one backend plus its private fault domain (a Domain — the
// breaker/probe state machine shared with the replica layer) and metric
// series. One dead backend degrades exactly the keys it owns.
type shard struct {
	store   farmem.Store
	astore  farmem.AsyncStore      // non-nil iff the backend supports IssueRead
	awstore farmem.AsyncWriteStore // non-nil iff the backend supports IssueWrite
	rwstore farmem.RangeWriteStore // non-nil iff the backend supports IssueWriteRanges
	chaser  farmem.AsyncChaseStore // non-nil iff the backend supports IssueChase
	pinger  farmem.Pinger          // non-nil iff the backend supports Ping

	dom Domain

	// lastRecovery is the RecoveryEpoch value stamped when this shard
	// last recovered — the drain-scoping cue that lets the runtime drain
	// only the recovering shard's stranded write-backs.
	lastRecovery atomic.Uint64

	mu      sync.Mutex
	objects map[uint64]struct{} // keys ever written, for the objects gauge

	reads, writes, bytesIn, bytesOut *stats.Counter
	failures, degraded               *stats.Counter
	trips, recoveries                *stats.Counter
	objGauge, stateGauge             *stats.Gauge
}

func (s *shard) gate(probeEvery time.Duration) bool {
	return s.dom.Gate(probeEvery, s.pinger != nil)
}

func (s *shard) breakerState() farmem.BreakerState { return s.dom.State() }

// ShardedStore multiplexes farmem store traffic across N backends using
// rendezvous placement (see Map). It implements farmem.Store,
// farmem.AsyncStore, farmem.AsyncWriteStore, farmem.Pinger and
// farmem.Recoverable.
//
// Fault domains are per shard: operations against a tripped shard fail
// fast with an error wrapping farmem.ErrDegraded while the other shards
// keep serving, and a background prober arms recovery per shard. The
// RecoveryEpoch counter advances on every shard recovery, which is the
// farmem runtime's cue to drain dirty write-backs stranded by the
// outage.
type ShardedStore struct {
	m      *Map
	shards []*shard
	opts   Options
	reg    *obs.Registry

	policyMu sync.RWMutex
	policy   map[int]Policy

	recoveryEpoch atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewSharded builds a ShardedStore over the given backends. Async issue
// (farmem.AsyncStore) and liveness probing (farmem.Pinger) are detected
// per backend by type assertion, so heterogeneous fleets work — a shard
// without IssueRead just serves prefetches synchronously.
func NewSharded(backends []farmem.Store, opts Options) (*ShardedStore, error) {
	if len(backends) == 0 {
		return nil, errors.New("shardmap: no backends")
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = 250 * time.Millisecond
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ss := &ShardedStore{
		m:      NewMap(len(backends)),
		opts:   opts,
		reg:    reg,
		policy: make(map[int]Policy),
		stop:   make(chan struct{}),
	}
	anyPinger := false
	for i, b := range backends {
		l := strconv.Itoa(i)
		s := &shard{
			store:      b,
			objects:    make(map[uint64]struct{}),
			reads:      reg.Counter(MetricShardReads, "shard", l),
			writes:     reg.Counter(MetricShardWrites, "shard", l),
			bytesIn:    reg.Counter(MetricShardBytesIn, "shard", l),
			bytesOut:   reg.Counter(MetricShardBytesOut, "shard", l),
			failures:   reg.Counter(MetricShardFailures, "shard", l),
			degraded:   reg.Counter(MetricShardDegraded, "shard", l),
			trips:      reg.Counter(MetricShardTrips, "shard", l),
			recoveries: reg.Counter(MetricShardRecoveries, "shard", l),
			objGauge:   reg.Gauge(MetricShardObjects, "shard", l),
			stateGauge: reg.Gauge(MetricShardState, "shard", l),
		}
		if as, ok := b.(farmem.AsyncStore); ok {
			s.astore = as
		}
		if aw, ok := b.(farmem.AsyncWriteStore); ok {
			s.awstore = aw
		}
		if rw, ok := b.(farmem.RangeWriteStore); ok {
			s.rwstore = rw
		}
		if cs, ok := b.(farmem.AsyncChaseStore); ok {
			s.chaser = cs
		}
		if p, ok := b.(farmem.Pinger); ok {
			s.pinger = p
			anyPinger = true
		}
		ss.shards = append(ss.shards, s)
	}
	if opts.BreakerThreshold > 0 && anyPinger {
		ss.wg.Add(1)
		go ss.probeLoop()
	}
	return ss, nil
}

// Obs returns the registry the per-shard series are published into.
func (ss *ShardedStore) Obs() *obs.Registry { return ss.reg }

// NumShards returns the number of backends.
func (ss *ShardedStore) NumShards() int { return ss.m.Shards() }

// SetPolicy installs the placement rule for one data structure.
// Unconfigured structures stripe. Must be called before the structure's
// objects are written — changing the rule afterwards would strand them
// on their old shards.
func (ss *ShardedStore) SetPolicy(ds int, p Policy) {
	ss.policyMu.Lock()
	ss.policy[ds] = p
	ss.policyMu.Unlock()
}

// ShardOf returns the owning shard for one object.
func (ss *ShardedStore) ShardOf(ds, idx int) int {
	ss.policyMu.RLock()
	p := ss.policy[ds]
	ss.policyMu.RUnlock()
	if p == PolicyPin {
		return ss.m.OwnerDS(ds)
	}
	return ss.m.OwnerObj(ds, idx)
}

// ShardState reports one shard's breaker state.
func (ss *ShardedStore) ShardState(i int) farmem.BreakerState {
	return ss.shards[i].breakerState()
}

// RecoveryEpoch implements farmem.Recoverable: it advances once per
// shard recovery (half-open trial success), signalling the runtime to
// drain write-backs stranded while that shard was down.
func (ss *ShardedStore) RecoveryEpoch() uint64 { return ss.recoveryEpoch.Load() }

// degradedErr is the fail-fast error for a tripped shard; it wraps
// farmem.ErrDegraded so the runtime can tell a contained shard outage
// from a transport failure (no retries, no global breaker accounting).
func (ss *ShardedStore) degradedErr(i int) error {
	ss.shards[i].degraded.Inc()
	return fmt.Errorf("shardmap: shard %d: %w", i, farmem.ErrDegraded)
}

func (ss *ShardedStore) ok(s *shard) {
	if s.dom.OnSuccess() {
		s.recoveries.Inc()
		// Stamp before publishing the epoch advance: when the runtime
		// observes the new epoch, the recovered shard's stamp is already
		// in place for ShouldDrain.
		s.lastRecovery.Store(ss.recoveryEpoch.Load() + 1)
		ss.recoveryEpoch.Add(1)
	}
	s.stateGauge.Set(int64(farmem.BreakerClosed))
}

func (ss *ShardedStore) fail(s *shard) {
	s.failures.Inc()
	if s.dom.OnFailure(ss.opts.BreakerThreshold) {
		s.trips.Inc()
	}
	s.stateGauge.Set(int64(s.breakerState()))
}

// ShouldDrain implements farmem.DrainScoper: after observing a
// recovery-epoch advance past sinceEpoch, the runtime drains only
// objects whose owning shard recovered in that window and is serving
// again — not every dirty object in the cache.
func (ss *ShardedStore) ShouldDrain(ds, idx int, sinceEpoch uint64) bool {
	s := ss.shards[ss.ShardOf(ds, idx)]
	return s.lastRecovery.Load() > sinceEpoch && s.breakerState() == farmem.BreakerClosed
}

// Stranded implements farmem.DrainScoper: the owning shard is still
// refusing traffic, so the object must stay pinned for a future
// recovery epoch rather than be drained now.
func (ss *ShardedStore) Stranded(ds, idx int) bool {
	return ss.shards[ss.ShardOf(ds, idx)].breakerState() != farmem.BreakerClosed
}

// ReadObj implements farmem.Store, routing to the owning shard.
func (ss *ShardedStore) ReadObj(ds, idx int, dst []byte) error {
	i := ss.ShardOf(ds, idx)
	s := ss.shards[i]
	if !s.gate(ss.opts.ProbeEvery) {
		return ss.degradedErr(i)
	}
	if err := s.store.ReadObj(ds, idx, dst); err != nil {
		ss.fail(s)
		return fmt.Errorf("shardmap: shard %d read: %w", i, err)
	}
	ss.ok(s)
	s.reads.Inc()
	s.bytesIn.Add(uint64(len(dst)))
	return nil
}

// WriteObj implements farmem.Store, routing to the owning shard.
func (ss *ShardedStore) WriteObj(ds, idx int, src []byte) error {
	i := ss.ShardOf(ds, idx)
	s := ss.shards[i]
	if !s.gate(ss.opts.ProbeEvery) {
		return ss.degradedErr(i)
	}
	if err := s.store.WriteObj(ds, idx, src); err != nil {
		ss.fail(s)
		return fmt.Errorf("shardmap: shard %d write: %w", i, err)
	}
	ss.ok(s)
	s.writes.Inc()
	s.bytesOut.Add(uint64(len(src)))
	s.noteObject(ds, idx)
	return nil
}

// noteObject maintains the objects-per-shard gauge (distinct keys ever
// written through this store).
func (s *shard) noteObject(ds, idx int) {
	key := uint64(ds)<<32 | uint64(uint32(idx))
	s.mu.Lock()
	n := len(s.objects)
	s.objects[key] = struct{}{}
	grew := len(s.objects) != n
	s.mu.Unlock()
	if grew {
		s.objGauge.Add(1)
	}
}

// IssueRead implements farmem.AsyncStore. Reads fan out: each shard has
// its own pipelined connection, so a prefetch batch that spans shards
// rides N doorbells in parallel. A shard without async support serves
// the read synchronously before returning.
func (ss *ShardedStore) IssueRead(ds, idx int, dst []byte, done func(error)) {
	i := ss.ShardOf(ds, idx)
	s := ss.shards[i]
	if !s.gate(ss.opts.ProbeEvery) {
		done(ss.degradedErr(i))
		return
	}
	finish := func(err error) {
		if err != nil {
			ss.fail(s)
			done(fmt.Errorf("shardmap: shard %d read: %w", i, err))
			return
		}
		ss.ok(s)
		s.reads.Inc()
		s.bytesIn.Add(uint64(len(dst)))
		done(nil)
	}
	if s.astore != nil {
		s.astore.IssueRead(ds, idx, dst, finish)
		return
	}
	finish(s.store.ReadObj(ds, idx, dst))
}

// IssueWrite implements farmem.AsyncWriteStore, fanning staged
// write-backs out to each shard's own pipelined write window. A tripped
// shard fails fast — the runtime parks the staged payload until this
// shard's recovery epoch — and a backend without async support serves
// the write synchronously before returning.
func (ss *ShardedStore) IssueWrite(ds, idx int, src []byte, done func(error)) {
	i := ss.ShardOf(ds, idx)
	s := ss.shards[i]
	if !s.gate(ss.opts.ProbeEvery) {
		done(ss.degradedErr(i))
		return
	}
	finish := func(err error) {
		if err != nil {
			ss.fail(s)
			done(fmt.Errorf("shardmap: shard %d write: %w", i, err))
			return
		}
		ss.ok(s)
		s.writes.Inc()
		s.bytesOut.Add(uint64(len(src)))
		s.noteObject(ds, idx)
		done(nil)
	}
	if s.awstore != nil {
		s.awstore.IssueWrite(ds, idx, src, finish)
		return
	}
	finish(s.store.WriteObj(ds, idx, src))
}

// IssueWriteRanges implements farmem.RangeWriteStore: route the range
// write to the owning shard. A shard whose backend lacks the range verb
// — or a degraded one past its gate — transparently falls back to a
// full-object write (src always carries the whole image).
func (ss *ShardedStore) IssueWriteRanges(ds, idx int, src []byte, exts []rdma.Extent, done func(error)) {
	i := ss.ShardOf(ds, idx)
	s := ss.shards[i]
	if s.rwstore == nil {
		ss.IssueWrite(ds, idx, src, done)
		return
	}
	if !s.gate(ss.opts.ProbeEvery) {
		done(ss.degradedErr(i))
		return
	}
	shipped := 0
	for _, e := range exts {
		shipped += int(e.Len)
	}
	finish := func(err error) {
		if err != nil {
			ss.fail(s)
			done(fmt.Errorf("shardmap: shard %d range write: %w", i, err))
			return
		}
		ss.ok(s)
		s.writes.Inc()
		s.bytesOut.Add(uint64(shipped))
		s.noteObject(ds, idx)
		done(nil)
	}
	s.rwstore.IssueWriteRanges(ds, idx, src, exts, finish)
}

// ChaseCapable implements farmem.ChaseStore. A traversal program walks
// entirely on one backend, so the sharded store only offers offload
// when every shard speaks the chase verbs on its live session — a
// structure's pinned owner is decided by placement, not capability, and
// flipping capability per shard would make offload behaviour depend on
// which shard a structure happened to hash to.
func (ss *ShardedStore) ChaseCapable() bool {
	for _, s := range ss.shards {
		if s.chaser == nil || !s.chaser.ChaseCapable() {
			return false
		}
	}
	return true
}

// chaseShard resolves the single shard a traversal program may run on:
// the walk follows pointers server-side, so every object of the
// structure must live on that shard — true for PolicyPin structures
// (and trivially for a one-shard fleet). Striped structures are
// refused: their successors live on other shards, and the serving shard
// would zero-fill them mid-walk.
func (ss *ShardedStore) chaseShard(ds int) (int, error) {
	if ss.m.Shards() == 1 {
		return ss.ShardOf(ds, 0), nil
	}
	ss.policyMu.RLock()
	p := ss.policy[ds]
	ss.policyMu.RUnlock()
	if p != PolicyPin {
		return 0, fmt.Errorf("shardmap: chase on striped ds%d (traversal programs need a pinned structure)", ds)
	}
	return ss.m.OwnerDS(ds), nil
}

// Chase implements farmem.ChaseStore, routing the whole program to the
// pinned owner of its structure.
func (ss *ShardedStore) Chase(req rdma.ChaseReq) (rdma.ChaseResult, error) {
	i, err := ss.chaseShard(int(req.DS))
	if err != nil {
		return rdma.ChaseResult{}, err
	}
	s := ss.shards[i]
	if s.chaser == nil {
		return rdma.ChaseResult{}, fmt.Errorf("shardmap: shard %d does not speak the chase verbs", i)
	}
	if !s.gate(ss.opts.ProbeEvery) {
		return rdma.ChaseResult{}, ss.degradedErr(i)
	}
	res, err := s.chaser.Chase(req)
	if err != nil {
		ss.fail(s)
		return res, fmt.Errorf("shardmap: shard %d chase: %w", i, err)
	}
	ss.ok(s)
	s.reads.Inc()
	for _, h := range res.Hops {
		s.bytesIn.Add(uint64(len(h.Data)))
	}
	return res, nil
}

// IssueChase implements farmem.AsyncChaseStore, riding the pinned
// shard's own pipelined chase window.
func (ss *ShardedStore) IssueChase(req rdma.ChaseReq, done func(rdma.ChaseResult, error)) {
	i, err := ss.chaseShard(int(req.DS))
	if err != nil {
		done(rdma.ChaseResult{}, err)
		return
	}
	s := ss.shards[i]
	if s.chaser == nil {
		done(rdma.ChaseResult{}, fmt.Errorf("shardmap: shard %d does not speak the chase verbs", i))
		return
	}
	if !s.gate(ss.opts.ProbeEvery) {
		done(ss.degradedChaseErr(i))
		return
	}
	s.chaser.IssueChase(req, func(res rdma.ChaseResult, err error) {
		if err != nil {
			ss.fail(s)
			done(res, fmt.Errorf("shardmap: shard %d chase: %w", i, err))
			return
		}
		ss.ok(s)
		s.reads.Inc()
		for _, h := range res.Hops {
			s.bytesIn.Add(uint64(len(h.Data)))
		}
		done(res, nil)
	})
}

// degradedChaseErr adapts degradedErr to the chase completion shape.
func (ss *ShardedStore) degradedChaseErr(i int) (rdma.ChaseResult, error) {
	return rdma.ChaseResult{}, ss.degradedErr(i)
}

// Ping implements farmem.Pinger at cluster scope: it succeeds while at
// least one shard answers, because the runtime's *global* breaker
// models total outage — partial outages are the per-shard breakers'
// job. Backends without a Ping method count as alive.
func (ss *ShardedStore) Ping() error {
	var firstErr error
	alive := false
	for i, s := range ss.shards {
		if s.pinger == nil {
			alive = true
			continue
		}
		if err := s.pinger.Ping(); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shardmap: shard %d ping: %w", i, err)
			}
			continue
		}
		alive = true
	}
	if alive {
		return nil
	}
	return firstErr
}

// probeLoop pings open shards on a wall-clock interval; a successful
// ping arms that shard half-open so the next operation against it is
// the recovery trial. Probes run concurrently per shard (a dead
// backend's connect timeout must not delay another shard's recovery)
// but never overlap on the same shard.
func (ss *ShardedStore) probeLoop() {
	defer ss.wg.Done()
	t := time.NewTicker(ss.opts.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-ss.stop:
			return
		case <-t.C:
			for _, s := range ss.shards {
				if s.pinger == nil || !s.dom.TryProbe() {
					continue
				}
				ss.wg.Add(1)
				go func(s *shard) {
					defer ss.wg.Done()
					err := s.pinger.Ping()
					s.dom.ProbeDone()
					if err == nil {
						s.dom.ArmHalfOpen()
					}
				}(s)
			}
		}
	}
}

// Close stops the prober and closes every backend that implements
// io.Closer, returning the first error.
func (ss *ShardedStore) Close() error {
	var err error
	ss.closeOnce.Do(func() {
		close(ss.stop)
		ss.wg.Wait()
		for _, s := range ss.shards {
			if c, ok := s.store.(io.Closer); ok {
				if cerr := c.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	})
	return err
}
