// Package shardmap places far-memory objects across multiple remote
// backends (shards) and serves them through a single farmem.Store.
//
// Placement uses rendezvous (highest-random-weight) hashing: every
// (shard, key) pair gets a pseudo-random score and the key lives on the
// shard with the highest score. Unlike modulo placement, adding or
// removing one shard moves only the keys that scored highest on it
// (1/N of the space), and unlike consistent-hashing rings there is no
// token table to size or rebalance — N mixes per lookup, branch-free.
//
// Placement granularity follows the compiler's per-data-structure view
// of the heap (CaRDS §4.2): a structure whose accesses chase pointers
// pins whole to one shard, so the batched prefetch windows the compiler
// plans stay single-backend (one doorbell, one connection); large
// flat pools stripe object-by-object across all shards for aggregate
// bandwidth. See Policy.
package shardmap

// Policy is the per-data-structure placement rule.
type Policy int

const (
	// PolicyStripe spreads the structure's objects across every shard by
	// (ds, idx) — the default, maximizing aggregate read bandwidth for
	// flat pools.
	PolicyStripe Policy = iota
	// PolicyPin places the whole structure on one shard chosen by its
	// id, keeping compiler-batched prefetch windows on a single
	// backend's pipelined connection.
	PolicyPin
)

func (p Policy) String() string {
	if p == PolicyPin {
		return "pin"
	}
	return "stripe"
}

// PolicyFor derives the placement rule from the compiler's ds_init
// hints: pointer-chasing and recursive structures pin (their prefetch
// batches follow edges within one pool and must not fan out mid-chain);
// everything else stripes.
func PolicyFor(recursive, pointerChase bool) Policy {
	if recursive || pointerChase {
		return PolicyPin
	}
	return PolicyStripe
}

// mix64 is the splitmix64 finalizer: a cheap invertible mix whose
// output bits all depend on all input bits, good enough to make HRW
// scores statistically independent per (shard, key).
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Map is an immutable rendezvous-hash placement over n shards.
type Map struct {
	salts []uint64
}

// NewMap builds a placement over n shards (n >= 1).
func NewMap(n int) *Map {
	if n < 1 {
		n = 1
	}
	salts := make([]uint64, n)
	for i := range salts {
		salts[i] = mix64(uint64(i) + 1)
	}
	return &Map{salts: salts}
}

// Shards returns the number of shards.
func (m *Map) Shards() int { return len(m.salts) }

// Owner returns the shard with the highest rendezvous score for key.
// Ties (astronomically rare) break toward the lower index, so placement
// is total and deterministic.
func (m *Map) Owner(key uint64) int {
	best, bestScore := 0, mix64(key^m.salts[0])
	for i := 1; i < len(m.salts); i++ {
		if s := mix64(key ^ m.salts[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// OwnerDS returns the owning shard for a pinned data structure.
func (m *Map) OwnerDS(ds int) int {
	return m.Owner(mix64(uint64(ds) + 0x0D5))
}

// OwnerObj returns the owning shard for one object of a striped
// structure.
func (m *Map) OwnerObj(ds, idx int) int {
	return m.Owner(uint64(ds)<<32 | uint64(uint32(idx)))
}

// Owners appends the top-r shards for key in descending rendezvous
// rank into dst (reused when its capacity allows — the replica hot
// path passes a scratch slice to stay allocation-free). dst[0] is
// Owner(key); the rest are the failover order. Rendezvous ranking
// makes the list stable under membership churn: removing one shard
// promotes exactly the next-ranked shard for the keys it owned.
func (m *Map) Owners(key uint64, r int, dst []int) []int {
	n := len(m.salts)
	if r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	dst = dst[:0]
	for len(dst) < r {
		best, bestScore, found := -1, uint64(0), false
		for i := 0; i < n; i++ {
			taken := false
			for _, d := range dst {
				if d == i {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			// Strict > keeps the tie-break toward the lower index, matching
			// Owner exactly.
			if s := mix64(key ^ m.salts[i]); !found || s > bestScore {
				best, bestScore, found = i, s, true
			}
		}
		dst = append(dst, best)
	}
	return dst
}

// OwnersDS returns the top-r ranked shards for a pinned data
// structure; see Owners.
func (m *Map) OwnersDS(ds, r int, dst []int) []int {
	return m.Owners(mix64(uint64(ds)+0x0D5), r, dst)
}

// OwnersObj returns the top-r ranked shards for one object of a
// striped structure; see Owners.
func (m *Map) OwnersObj(ds, idx, r int, dst []int) []int {
	return m.Owners(uint64(ds)<<32|uint64(uint32(idx)), r, dst)
}
