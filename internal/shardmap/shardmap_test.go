package shardmap

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cards/internal/farmem"
	"cards/internal/obs"
)

func TestOwnerBalance(t *testing.T) {
	m := NewMap(4)
	counts := make([]int, 4)
	const keys = 40000
	for i := 0; i < keys; i++ {
		counts[m.OwnerObj(0, i)]++
	}
	want := keys / 4
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("shard %d owns %d of %d keys (want ~%d)", i, c, keys, want)
		}
	}
}

func TestOwnerMinimalDisruption(t *testing.T) {
	// Rendezvous hashing: adding a shard may only move keys onto the new
	// shard, never shuffle keys between existing ones.
	m4, m5 := NewMap(4), NewMap(5)
	moved := 0
	const keys = 10000
	for i := 0; i < keys; i++ {
		a, b := m4.OwnerObj(7, i), m5.OwnerObj(7, i)
		if a == b {
			continue
		}
		if b != 4 {
			t.Fatalf("key %d moved %d -> %d (not the new shard)", i, a, b)
		}
		moved++
	}
	if moved < keys/10 || moved > keys*3/10 {
		t.Fatalf("moved %d of %d keys; want ~1/5", moved, keys)
	}
}

func TestPolicyPinKeepsDSOnOneShard(t *testing.T) {
	backends := make([]farmem.Store, 4)
	for i := range backends {
		backends[i] = farmem.NewMapStore()
	}
	ss, err := NewSharded(backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	ss.SetPolicy(3, PolicyPin)
	pinHome := ss.ShardOf(3, 0)
	stripeSeen := make(map[int]bool)
	for idx := 0; idx < 256; idx++ {
		if got := ss.ShardOf(3, idx); got != pinHome {
			t.Fatalf("pinned DS object %d on shard %d, want %d", idx, got, pinHome)
		}
		stripeSeen[ss.ShardOf(5, idx)] = true
	}
	if len(stripeSeen) != 4 {
		t.Fatalf("striped DS used %d shards, want 4", len(stripeSeen))
	}
}

func TestPolicyFor(t *testing.T) {
	if PolicyFor(true, false) != PolicyPin || PolicyFor(false, true) != PolicyPin {
		t.Fatal("recursive / pointer-chasing structures must pin")
	}
	if PolicyFor(false, false) != PolicyStripe {
		t.Fatal("flat pools must stripe")
	}
}

func TestShardedRoutingRoundTrip(t *testing.T) {
	backs := make([]*farmem.MapStore, 3)
	backends := make([]farmem.Store, 3)
	for i := range backs {
		backs[i] = farmem.NewMapStore()
		backends[i] = backs[i]
	}
	ss, err := NewSharded(backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	const n = 64
	for idx := 0; idx < n; idx++ {
		src := []byte{byte(idx), byte(idx >> 1), 0xAB}
		if err := ss.WriteObj(0, idx, src); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, b := range backs {
		total += b.Objects()
	}
	if total != n {
		t.Fatalf("backends hold %d objects, want %d", total, n)
	}
	for idx := 0; idx < n; idx++ {
		// The owning backend must hold the object; a read through the
		// sharded store must return it byte-exact.
		dst := make([]byte, 3)
		if err := ss.ReadObj(0, idx, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != byte(idx) || dst[2] != 0xAB {
			t.Fatalf("object %d read back %v", idx, dst)
		}
		direct := make([]byte, 3)
		if err := backs[ss.ShardOf(0, idx)].ReadObj(0, idx, direct); err != nil {
			t.Fatal(err)
		}
		if direct[0] != byte(idx) {
			t.Fatalf("object %d not on its owning shard", idx)
		}
	}
}

// deadableStore fails every operation while dead, and supports Ping so
// the prober can detect revival.
type deadableStore struct {
	inner *farmem.MapStore
	dead  bool
}

var errDown = errors.New("backend down")

func (s *deadableStore) ReadObj(ds, idx int, dst []byte) error {
	if s.dead {
		return errDown
	}
	return s.inner.ReadObj(ds, idx, dst)
}

func (s *deadableStore) WriteObj(ds, idx int, src []byte) error {
	if s.dead {
		return errDown
	}
	return s.inner.WriteObj(ds, idx, src)
}

func (s *deadableStore) Ping() error {
	if s.dead {
		return errDown
	}
	return nil
}

func TestPerShardBreakerIndependenceAndRecovery(t *testing.T) {
	stores := make([]*deadableStore, 3)
	backends := make([]farmem.Store, 3)
	for i := range stores {
		stores[i] = &deadableStore{inner: farmem.NewMapStore()}
		backends[i] = stores[i]
	}
	ss, err := NewSharded(backends, Options{BreakerThreshold: 2, ProbeEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	// Find one object per shard.
	objOn := make([]int, 3)
	for i := range objOn {
		objOn[i] = -1
	}
	for idx := 0; idx < 256; idx++ {
		if s := ss.ShardOf(0, idx); objOn[s] == -1 {
			objOn[s] = idx
		}
	}
	buf := make([]byte, 8)
	for i, idx := range objOn {
		if idx == -1 {
			t.Fatalf("no object landed on shard %d", i)
		}
		if err := ss.WriteObj(0, idx, buf); err != nil {
			t.Fatal(err)
		}
	}

	const dead = 1
	stores[dead].dead = true
	// Trip the dead shard's breaker.
	for i := 0; i < 2; i++ {
		if err := ss.ReadObj(0, objOn[dead], buf); err == nil {
			t.Fatal("read from dead shard succeeded")
		}
	}
	if err := ss.ReadObj(0, objOn[dead], buf); !errors.Is(err, farmem.ErrDegraded) {
		t.Fatalf("tripped shard returned %v, want ErrDegraded", err)
	}
	if got := ss.ShardState(dead); got != farmem.BreakerOpen {
		t.Fatalf("dead shard state %v, want open", got)
	}
	// The other shards keep serving, breakers closed.
	for i, idx := range objOn {
		if i == dead {
			continue
		}
		if err := ss.ReadObj(0, idx, buf); err != nil {
			t.Fatalf("healthy shard %d failed: %v", i, err)
		}
		if got := ss.ShardState(i); got != farmem.BreakerClosed {
			t.Fatalf("healthy shard %d state %v", i, got)
		}
	}
	// Cluster-level Ping stays up (the global breaker models total
	// outage only).
	if err := ss.Ping(); err != nil {
		t.Fatalf("cluster ping while one shard down: %v", err)
	}

	// Revive; the prober arms half-open, the next op recovers and bumps
	// the epoch.
	before := ss.RecoveryEpoch()
	stores[dead].dead = false
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := ss.ReadObj(0, objOn[dead], buf); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead shard never recovered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := ss.ShardState(dead); got != farmem.BreakerClosed {
		t.Fatalf("recovered shard state %v", got)
	}
	if ss.RecoveryEpoch() != before+1 {
		t.Fatalf("recovery epoch %d, want %d", ss.RecoveryEpoch(), before+1)
	}
}

func TestShardedObsSeries(t *testing.T) {
	backends := make([]farmem.Store, 2)
	for i := range backends {
		backends[i] = farmem.NewMapStore()
	}
	ss, err := NewSharded(backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	buf := make([]byte, 16)
	for idx := 0; idx < 32; idx++ {
		if err := ss.WriteObj(0, idx, buf); err != nil {
			t.Fatal(err)
		}
		if err := ss.ReadObj(0, idx, buf); err != nil {
			t.Fatal(err)
		}
	}
	snap := ss.Obs().Snapshot()
	for i := 0; i < 2; i++ {
		lbl := fmt.Sprintf("%d", i)
		reads := snap.Counters[obs.Key(MetricShardReads, "shard", lbl)]
		objects := snap.Gauges[obs.Key(MetricShardObjects, "shard", lbl)]
		if reads == 0 || objects == 0 {
			t.Fatalf("shard %d missing obs series: reads=%d objects=%d", i, reads, objects)
		}
	}
}
