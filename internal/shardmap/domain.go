package shardmap

import (
	"sync"
	"time"

	"cards/internal/farmem"
)

// Domain is one backend's private fault domain: a circuit breaker at
// backend scope plus probe bookkeeping. It mirrors the farmem global
// breaker's state machine (closed / open / half-open) but per backend,
// so one dead backend degrades only the keys it owns. Extracted from
// the sharded store's shard struct so the replica layer drives the
// identical state machine per group member.
//
// All methods are safe for concurrent use.
type Domain struct {
	mu       sync.Mutex
	state    farmem.BreakerState
	consec   int
	openedAt time.Time
	probing  bool
}

// Gate reports whether an operation may proceed. While open it
// self-arms half-open after probeEvery when the backend has no Ping
// method (pingable backends are armed by their prober instead).
func (d *Domain) Gate(probeEvery time.Duration, pingable bool) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != farmem.BreakerOpen {
		return true
	}
	if !pingable && time.Since(d.openedAt) >= probeEvery {
		d.state = farmem.BreakerHalfOpen
		return true
	}
	return false
}

// OnSuccess records a successful operation; reports true when this
// success closed a half-open breaker (the backend recovered).
func (d *Domain) OnSuccess() (recovered bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.consec = 0
	if d.state == farmem.BreakerClosed {
		return false
	}
	d.state = farmem.BreakerClosed
	return true
}

// OnFailure records a failed operation; reports true when this failure
// tripped the breaker open (a half-open trial failure re-opens without
// re-reporting).
func (d *Domain) OnFailure(threshold int) (tripped bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.consec++
	switch d.state {
	case farmem.BreakerHalfOpen:
		d.state = farmem.BreakerOpen
		d.openedAt = time.Now()
	case farmem.BreakerClosed:
		if threshold > 0 && d.consec >= threshold {
			d.state = farmem.BreakerOpen
			d.openedAt = time.Now()
			return true
		}
	}
	return false
}

// ArmHalfOpen moves open -> half-open (called by a prober after a
// successful ping); the next operation is the recovery trial.
func (d *Domain) ArmHalfOpen() {
	d.mu.Lock()
	if d.state == farmem.BreakerOpen {
		d.state = farmem.BreakerHalfOpen
	}
	d.mu.Unlock()
}

// State returns the current breaker state.
func (d *Domain) State() farmem.BreakerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// TryProbe claims the probe slot when the domain is open and no probe
// is already running; the claimant must call ProbeDone afterwards.
func (d *Domain) TryProbe() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != farmem.BreakerOpen || d.probing {
		return false
	}
	d.probing = true
	return true
}

// ProbeDone releases the probe slot claimed by TryProbe.
func (d *Domain) ProbeDone() {
	d.mu.Lock()
	d.probing = false
	d.mu.Unlock()
}
