// Package netsim provides the deterministic timing substrate for the CaRDS
// reproduction: a virtual cycle clock, a cost model calibrated against the
// paper's Table 1, and a network link model with bandwidth contention and
// asynchronous (prefetch) transfers.
//
// The paper's evaluation ran on two CloudLab x170 machines (Intel Xeon
// E5-2640v4 @ 2.4 GHz, 25 Gb/s ConnectX-4). We do not have that testbed, so
// every runtime event instead charges cycles to a virtual clock using
// constants that reproduce the paper's measured primitive costs. Because
// all figures in the paper compare *relative* performance (policy A vs
// policy B, CaRDS vs TrackFM), a deterministic cost model preserves the
// shapes the paper reports while making every experiment reproducible
// bit-for-bit on any machine.
package netsim

import (
	"fmt"

	"cards/internal/stats"
)

// Cycles is a duration or timestamp measured in virtual CPU cycles.
type Cycles = uint64

// Clock is a virtual cycle counter. It is not safe for concurrent use;
// the interpreter and runtime are single-threaded per experiment (matching
// the single-application-thread measurements in the paper), and parallel
// experiments each own a Clock.
type Clock struct {
	now Cycles
}

// Now returns the current virtual time.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves the clock forward by d cycles.
func (c *Clock) Advance(d Cycles) { c.now += d }

// AdvanceTo moves the clock forward to t if t is in the future; a no-op
// otherwise. Used when the executing thread blocks on an in-flight
// transfer that completes at t.
func (c *Clock) AdvanceTo(t Cycles) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }

// Seconds converts a cycle count to seconds at the given core frequency.
func Seconds(cycles Cycles, hz float64) float64 { return float64(cycles) / hz }

// DefaultHz is the clock rate of the paper's Xeon E5-2640v4.
const DefaultHz = 2.4e9

// CostModel holds the per-event cycle charges. The defaults reproduce the
// paper's Table 1 ("Comparison of primitive overheads for CaRDS and
// TrackFM", median cycles over 100 trials) and the 25 Gb/s + DPDK
// round-trip behaviour of the AIFM runtime both systems build on.
type CostModel struct {
	// Instr is the cost charged per interpreted IR instruction.
	Instr Cycles

	// CustodyCheck is the inline guard cost: shr + conditional branch
	// (Figure 3). Charged on every guarded access, hit or miss.
	CustodyCheck Cycles

	// DerefLocal is the CaRDS cards_deref slow-path cost when the object
	// is already resident: DS lookup, object-table index, safety check
	// (Table 1: 378 read / 384 write).
	DerefLocalRead  Cycles
	DerefLocalWrite Cycles

	// RemoteRTT is the fixed network round-trip plus runtime bookkeeping
	// charged for a synchronous remote fetch, excluding payload transfer
	// time. Table 1 reports 59K cycles for a CaRDS remote fault; at
	// 2.4 GHz that is ~24.6 us, consistent with AIFM's DPDK stack.
	RemoteRTT Cycles

	// BytesPerCycle is the link bandwidth expressed as payload bytes per
	// CPU cycle. 25 Gb/s at 2.4 GHz is 25e9/8/2.4e9 ~= 1.30 bytes/cycle.
	BytesPerCycle float64

	// TrackFM guard costs (Table 1: 462/579 local, 46K/47K remote).
	// TrackFM's guards are cheaper remotely than CaRDS faults because
	// TrackFM tracks at fixed block granularity with a flatter lookup,
	// but its local guards are dearer since every access runs the full
	// table walk (no custody-bit early exit).
	TrackFMGuardLocalRead   Cycles
	TrackFMGuardLocalWrite  Cycles
	TrackFMGuardRemoteRead  Cycles
	TrackFMGuardRemoteWrite Cycles

	// EvictObject is the CPU cost of evicting one object (unmapping +
	// enqueueing write-back), excluding the write-back transfer itself.
	EvictObject Cycles

	// PrefetchIssue is the CPU cost of issuing one asynchronous prefetch.
	PrefetchIssue Cycles

	// AllocLocal is the cost of a local (pinned) allocation; AllocRemote
	// the cost of registering a remotable allocation with the runtime.
	AllocLocal  Cycles
	AllocRemote Cycles

	// RetryBackoff is the extra charge per retried remote operation on
	// top of the wasted round trip: the backoff delay the transport
	// inserts before reissuing (~10 us at 2.4 GHz).
	RetryBackoff Cycles
}

// DefaultCostModel returns the Table 1 calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		Instr:                   1,
		CustodyCheck:            5,
		DerefLocalRead:          378,
		DerefLocalWrite:         384,
		RemoteRTT:               56000,
		BytesPerCycle:           25e9 / 8 / DefaultHz,
		TrackFMGuardLocalRead:   462,
		TrackFMGuardLocalWrite:  579,
		TrackFMGuardRemoteRead:  43000,
		TrackFMGuardRemoteWrite: 44000,
		EvictObject:             600,
		PrefetchIssue:           150,
		AllocLocal:              80,
		AllocRemote:             200,
		RetryBackoff:            24000,
	}
}

// TransferCycles returns the payload transfer time for size bytes.
func (m *CostModel) TransferCycles(size int) Cycles {
	if size <= 0 {
		return 0
	}
	return Cycles(float64(size) / m.BytesPerCycle)
}

// Link models a single full-duplex network link with serialized payload
// transfer: concurrent transfers queue behind one another for bandwidth,
// while the fixed RTT portion of each request overlaps freely. This is the
// behaviour that makes prefetching profitable but not free — exactly the
// trade-off the paper's prefetch policies navigate.
type Link struct {
	model CostModel
	clock *Clock

	// busyUntil is the cycle at which the link's transmit queue drains.
	busyUntil Cycles

	// Stats.
	Fetches    uint64 // synchronous fetches issued
	Prefetches uint64 // asynchronous fetches issued
	WriteBacks uint64 // eviction write-backs issued
	Retries    uint64 // remote operations reissued after a fault
	BytesIn    uint64 // payload bytes fetched (both kinds)
	BytesOut   uint64 // payload bytes written back

	// QueueDelay records, per scheduled transfer, the cycles it waited
	// behind earlier transfers for link bandwidth — the queue-depth
	// signal that shows when prefetchers saturate the wire.
	QueueDelay stats.LocalHistogram
}

// NewLink creates a link with the given cost model, charging time to clock.
func NewLink(model CostModel, clock *Clock) *Link {
	return &Link{model: model, clock: clock}
}

// Model returns the link's cost model.
func (l *Link) Model() *CostModel { return &l.model }

// schedule reserves bandwidth for a transfer of size bytes starting no
// earlier than now, and returns the cycle at which the payload has fully
// arrived (start + RTT overlapped appropriately).
func (l *Link) schedule(size int) (arrival Cycles) {
	now := l.clock.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	l.QueueDelay.Observe(start - now)
	xfer := l.model.TransferCycles(size)
	l.busyUntil = start + xfer
	// The RTT is dominated by propagation + request processing, which
	// overlaps with other transfers; payload serialization does not.
	return start + l.model.RemoteRTT + xfer
}

// FetchSync performs a blocking remote read of size bytes: the clock
// advances to the arrival time.
func (l *Link) FetchSync(size int) {
	arrival := l.schedule(size)
	l.clock.AdvanceTo(arrival)
	l.Fetches++
	l.BytesIn += uint64(size)
}

// FetchAsync issues a non-blocking remote read and returns the cycle at
// which the payload will be resident. The issuing thread is charged only
// the prefetch-issue cost.
func (l *Link) FetchAsync(size int) (readyAt Cycles) {
	arrival := l.schedule(size)
	l.clock.Advance(l.model.PrefetchIssue)
	l.Prefetches++
	l.BytesIn += uint64(size)
	return arrival
}

// WriteBack issues an asynchronous write of size bytes (eviction). The
// caller is charged the eviction CPU cost; the transfer occupies link
// bandwidth but does not block.
func (l *Link) WriteBack(size int) {
	l.WriteBackAsync(size)
}

// WriteBackAsync is WriteBack returning the cycle at which the payload
// will have fully landed at the far tier — the virtual settle time a
// staged write-back becomes durable and its staging buffer reclaimable.
// A caller that must wait for durability (write-back backpressure,
// per-object ordering) blocks with WaitUntil(doneAt).
func (l *Link) WriteBackAsync(size int) (doneAt Cycles) {
	arrival := l.schedule(size)
	l.clock.Advance(l.model.EvictObject)
	l.WriteBacks++
	l.BytesOut += uint64(size)
	return arrival
}

// Retry charges the cost of one failed-and-reissued remote operation:
// the wasted round trip plus the backoff delay before the reissue. The
// transfer itself is charged by the eventual successful Fetch/WriteBack.
func (l *Link) Retry() {
	l.Retries++
	l.clock.Advance(l.model.RemoteRTT + l.model.RetryBackoff)
}

// WaitUntil blocks the executing thread until t (e.g. an in-flight
// prefetch the thread now depends on).
func (l *Link) WaitUntil(t Cycles) { l.clock.AdvanceTo(t) }

// QueueBacklog returns the cycles of payload serialization currently
// queued on the link (0 when the transmit queue is drained).
func (l *Link) QueueBacklog() Cycles {
	if now := l.clock.Now(); l.busyUntil > now {
		return l.busyUntil - now
	}
	return 0
}

// Reset clears link occupancy and statistics (the clock is not touched).
func (l *Link) Reset() {
	l.busyUntil = 0
	l.Fetches, l.Prefetches, l.WriteBacks, l.Retries = 0, 0, 0, 0
	l.BytesIn, l.BytesOut = 0, 0
	l.QueueDelay.Reset()
}

// String summarizes link activity.
func (l *Link) String() string {
	return fmt.Sprintf("link{fetch=%d prefetch=%d wb=%d in=%dB out=%dB}",
		l.Fetches, l.Prefetches, l.WriteBacks, l.BytesIn, l.BytesOut)
}
