package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock should start at 0")
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %d, want 100", c.Now())
	}
	c.AdvanceTo(50) // past time: no-op
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo past should not rewind: Now = %d", c.Now())
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Fatalf("Now = %d, want 200", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSeconds(t *testing.T) {
	got := Seconds(2_400_000_000, DefaultHz)
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Seconds = %v, want 1.0", got)
	}
}

func TestDefaultCostModelMatchesTable1(t *testing.T) {
	m := DefaultCostModel()
	// Table 1 local costs, verbatim.
	if m.DerefLocalRead != 378 || m.DerefLocalWrite != 384 {
		t.Errorf("CaRDS local deref = %d/%d, want 378/384",
			m.DerefLocalRead, m.DerefLocalWrite)
	}
	if m.TrackFMGuardLocalRead != 462 || m.TrackFMGuardLocalWrite != 579 {
		t.Errorf("TrackFM local guard = %d/%d, want 462/579",
			m.TrackFMGuardLocalRead, m.TrackFMGuardLocalWrite)
	}
	// Remote costs: RTT + 4KiB transfer should land near the paper's 59K
	// cycles for a CaRDS fault.
	total := m.RemoteRTT + m.TransferCycles(4096)
	if total < 55000 || total > 63000 {
		t.Errorf("CaRDS remote fault cost = %d cycles, want ~59K", total)
	}
	if m.TrackFMGuardRemoteRead+m.TransferCycles(4096) > total {
		t.Errorf("TrackFM remote guard should be cheaper than CaRDS fault (Table 1)")
	}
}

func TestTransferCycles(t *testing.T) {
	m := DefaultCostModel()
	if m.TransferCycles(0) != 0 {
		t.Fatal("zero-size transfer should be free")
	}
	if m.TransferCycles(-5) != 0 {
		t.Fatal("negative size should be free")
	}
	// 25Gb/s at 2.4GHz: 1 MiB should take ~805K cycles.
	c := m.TransferCycles(1 << 20)
	if c < 700000 || c > 900000 {
		t.Fatalf("1MiB transfer = %d cycles, want ~805K", c)
	}
}

func TestLinkFetchSyncAdvancesClock(t *testing.T) {
	var clk Clock
	l := NewLink(DefaultCostModel(), &clk)
	l.FetchSync(4096)
	want := l.Model().RemoteRTT + l.Model().TransferCycles(4096)
	if clk.Now() != want {
		t.Fatalf("clock = %d, want %d", clk.Now(), want)
	}
	if l.Fetches != 1 || l.BytesIn != 4096 {
		t.Fatalf("stats = %+v", l)
	}
}

func TestLinkBandwidthSerialization(t *testing.T) {
	var clk Clock
	l := NewLink(DefaultCostModel(), &clk)
	size := 1 << 20
	xfer := l.Model().TransferCycles(size)

	// Two back-to-back async fetches: second transfer queues behind the
	// first, so its arrival is one extra transfer-time later.
	r1 := l.FetchAsync(size)
	r2 := l.FetchAsync(size)
	if r2 < r1+xfer {
		t.Fatalf("second transfer should queue: r1=%d r2=%d xfer=%d", r1, r2, xfer)
	}
	if l.Prefetches != 2 {
		t.Fatalf("Prefetches = %d, want 2", l.Prefetches)
	}
}

func TestLinkAsyncDoesNotBlock(t *testing.T) {
	var clk Clock
	l := NewLink(DefaultCostModel(), &clk)
	before := clk.Now()
	ready := l.FetchAsync(1 << 20)
	// Issuing costs only PrefetchIssue cycles.
	if clk.Now() != before+l.Model().PrefetchIssue {
		t.Fatalf("async issue advanced clock by %d, want %d",
			clk.Now()-before, l.Model().PrefetchIssue)
	}
	if ready <= clk.Now() {
		t.Fatal("arrival should be in the future")
	}
	l.WaitUntil(ready)
	if clk.Now() != ready {
		t.Fatalf("WaitUntil: clock = %d, want %d", clk.Now(), ready)
	}
}

func TestLinkWriteBack(t *testing.T) {
	var clk Clock
	l := NewLink(DefaultCostModel(), &clk)
	l.WriteBack(4096)
	if clk.Now() != l.Model().EvictObject {
		t.Fatalf("write-back charged %d cycles, want %d", clk.Now(), l.Model().EvictObject)
	}
	if l.WriteBacks != 1 || l.BytesOut != 4096 {
		t.Fatalf("stats = %+v", l)
	}
	// A subsequent fetch must queue behind the write-back's transfer.
	r := l.FetchAsync(4096)
	if r < l.Model().TransferCycles(4096)+l.Model().RemoteRTT {
		t.Fatalf("fetch did not queue behind write-back: ready=%d", r)
	}
}

func TestLinkReset(t *testing.T) {
	var clk Clock
	l := NewLink(DefaultCostModel(), &clk)
	l.FetchSync(128)
	l.Reset()
	if l.Fetches != 0 || l.BytesIn != 0 || l.busyUntil != 0 {
		t.Fatalf("Reset left state: %+v", l)
	}
}

func TestLinkString(t *testing.T) {
	var clk Clock
	l := NewLink(DefaultCostModel(), &clk)
	if l.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: arrival times are non-decreasing across a sequence of async
// fetches (FIFO link), and each arrival is at least RTT after issue.
func TestLinkFIFOProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		var clk Clock
		l := NewLink(DefaultCostModel(), &clk)
		var last Cycles
		for _, s := range sizes {
			issued := clk.Now()
			r := l.FetchAsync(int(s))
			if r < last || r < issued+l.Model().RemoteRTT {
				return false
			}
			last = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a sync fetch never finishes before an earlier async fetch of
// the same size could have (bandwidth is conserved, not created).
func TestLinkBandwidthConservationProperty(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%16) + 1
		size := 4096
		var clkA Clock
		la := NewLink(DefaultCostModel(), &clkA)
		var lastReady Cycles
		for i := 0; i < count; i++ {
			lastReady = la.FetchAsync(size)
		}
		// Total occupancy must be at least count * transfer time.
		minBusy := Cycles(count) * la.Model().TransferCycles(size)
		return lastReady >= minBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
