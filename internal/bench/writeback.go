package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"cards/internal/farmem"
	"cards/internal/faultnet"
	"cards/internal/remote"
)

const (
	// wbObjSize matches the runtime's page-sized object granularity.
	wbObjSize = 4096
	// wbNetLatency is injected into every server-side frame read,
	// standing in for the far tier's network round trip: loopback alone
	// is CPU-bound and would hide exactly the RTT the async pipeline
	// exists to take off the eviction path.
	wbNetLatency = 200 * time.Microsecond
	// wbWorkingSet and wbCacheObjs size the dirty walk so every touch
	// past warm-up is a miss that must evict a dirty object first.
	wbWorkingSet = 64
	wbCacheObjs  = 16
	// wbLookahead keeps demand reads prefetched (and READBATCH-coalesced)
	// in both modes, so the sync-vs-async delta isolates the write side.
	wbLookahead = 4
)

// Writeback measures dirty-eviction write-back throughput and access
// tail latency of the synchronous write path (one blocking WRITE round
// trip per eviction, on the deref critical path) against the
// asynchronous batched pipeline (evictions staged to pooled buffers and
// flushed as WRITEBATCH frames), over a real TCP loopback connection
// with injected per-frame service latency.
func Writeback(cfg Config) (*Table, error) {
	writes := int(cfg.WritebackWrites)
	if writes <= 0 {
		writes = 512
	}

	srv := remote.NewServer()
	srv.ConnWrap = func(c io.ReadWriteCloser) io.ReadWriteCloser {
		return faultnet.Wrap(c, faultnet.Config{Latency: wbNetLatency, Seed: 1})
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("writeback: listen: %w", err)
	}
	defer srv.Close()

	sync, err := runWriteback(addr, writes, false, 0)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "writeback",
		Title: fmt.Sprintf("Dirty-eviction write-back, sync vs async pipeline, %d writes x %dB, %v injected RTT",
			writes, wbObjSize, wbNetLatency),
		Header: []string{"mode", "batch", "writebacks/s", "access p50", "access p99", "staged", "vs sync"},
	}
	syncWps := sync.perSec()
	row := func(mode, batch string, r *wbResult) {
		t.Rows = append(t.Rows, []string{
			mode, batch,
			fmt.Sprintf("%.0f", r.perSec()),
			r.p50.Round(time.Microsecond).String(),
			r.p99.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.staged),
			ratio(r.perSec() / syncWps),
		})
	}
	row("sync", "-", sync)
	for _, mb := range []int{4, 16, 32} {
		r, err := runWriteback(addr, writes, true, mb)
		if err != nil {
			return nil, err
		}
		row("async", fmt.Sprintf("%d", mb), r)
	}
	t.Notes = append(t.Notes,
		"wall-clock over real sockets; every touch past warm-up evicts a dirty object before it can fault its own in",
		"sync = one blocking WRITE round trip per eviction inside the deref; async = eviction copies to a pooled staging buffer and WRITEBATCH frames flush off the critical path",
		fmt.Sprintf("access latency spans one walk step (prefetch issue + guard); reads are prefetched %d ahead in both modes so the delta isolates the write path", wbLookahead),
		"elapsed includes the final drain: throughput counts only durable write-backs")
	return t, nil
}

// wbResult is one mode's measurement.
type wbResult struct {
	elapsed    time.Duration
	writeBacks uint64
	staged     uint64 // async evictions staged off the critical path
	p50, p99   time.Duration
}

func (r *wbResult) perSec() float64 {
	return float64(r.writeBacks) / r.elapsed.Seconds()
}

// syncWriteStore hides the pipelined client's IssueWrite so the runtime
// falls back to synchronous write-backs while keeping the asynchronous
// read path (prefetch coalescing) identical — the baseline differs only
// in how evictions reach the wire.
type syncWriteStore struct{ c *remote.PipelinedClient }

func (s syncWriteStore) ReadObj(ds, idx int, dst []byte) error  { return s.c.ReadObj(ds, idx, dst) }
func (s syncWriteStore) WriteObj(ds, idx int, src []byte) error { return s.c.WriteObj(ds, idx, src) }
func (s syncWriteStore) IssueRead(ds, idx int, dst []byte, done func(error)) {
	s.c.IssueRead(ds, idx, dst, done)
}

// runWriteback drives one cyclic dirty walk over the working set:
// prefetch wbLookahead ahead, write-guard the current object, repeat.
// Timing includes the final drain so both modes are charged until every
// write-back is durable.
func runWriteback(addr string, writes int, async bool, maxBatch int) (*wbResult, error) {
	c, err := remote.DialPipelined(addr, remote.PipelineOpts{MaxBatch: maxBatch})
	if err != nil {
		return nil, fmt.Errorf("writeback: dial: %w", err)
	}
	defer c.Close()

	var store farmem.Store = c
	if !async {
		store = syncWriteStore{c}
	}
	rt := farmem.New(farmem.Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: wbCacheObjs * wbObjSize,
		WriteBackBudget: wbWorkingSet * wbObjSize,
		Store:           store,
		MaxInflight:     2 * wbLookahead,
	})
	if _, err := rt.RegisterDS(0, farmem.DSMeta{Name: "wb", ObjSize: wbObjSize}); err != nil {
		return nil, err
	}
	if err := rt.SetPlacement(0, farmem.PlaceRemotable); err != nil {
		return nil, err
	}
	base, err := rt.DSAlloc(0, wbWorkingSet*wbObjSize)
	if err != nil {
		return nil, err
	}
	d := rt.DSByID(0)

	lats := make([]time.Duration, 0, writes)
	start := time.Now()
	for n := 0; n < writes; n++ {
		i := n % wbWorkingSet
		t0 := time.Now()
		for a := 1; a <= wbLookahead; a++ {
			rt.PrefetchObj(d, (i+a)%wbWorkingSet)
		}
		if _, err := rt.Guard(base+uint64(i*wbObjSize), true); err != nil {
			return nil, fmt.Errorf("writeback: guard obj %d: %w", i, err)
		}
		lats = append(lats, time.Since(t0))
	}
	if err := rt.Close(); err != nil { // drains staged write-backs
		return nil, fmt.Errorf("writeback: drain: %w", err)
	}
	elapsed := time.Since(start)

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	st := rt.Stats()
	return &wbResult{
		elapsed:    elapsed,
		writeBacks: d.Stats().WriteBacks,
		staged:     st.StagedWriteBacks,
		p50:        lats[len(lats)/2],
		p99:        lats[len(lats)*99/100],
	}, nil
}
