package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// cellF parses a numeric table cell (ignoring trailing units like "x").
func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(tab.Rows[row][col], "x"), "K")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell [%d][%d] = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func rowByName(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, r := range tab.Rows {
		if r[0] == name {
			return i
		}
	}
	t.Fatalf("no row %q in %s", name, tab.ID)
	return -1
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	cardsLocalR := cellF(t, tab, 0, 1)
	cardsLocalW := cellF(t, tab, 1, 1)
	tfmLocalR := cellF(t, tab, 2, 1)
	tfmLocalW := cellF(t, tab, 3, 1)
	// Paper Table 1 orderings: CaRDS local faults cheaper than TrackFM
	// guards; local costs O(100s) of cycles.
	if cardsLocalR >= tfmLocalR || cardsLocalW >= tfmLocalW {
		t.Errorf("CaRDS local (%v/%v) should undercut TrackFM (%v/%v)",
			cardsLocalR, cardsLocalW, tfmLocalR, tfmLocalW)
	}
	if cardsLocalR < 300 || cardsLocalR > 500 {
		t.Errorf("CaRDS local read = %v, want ~378", cardsLocalR)
	}
	// Remote: CaRDS ~59K, TrackFM ~46-47K (in K units in the table).
	cardsRemote := cellF(t, tab, 0, 2)
	tfmRemote := cellF(t, tab, 2, 2)
	if cardsRemote < 50 || cardsRemote > 70 {
		t.Errorf("CaRDS remote = %vK, want ~59K", cardsRemote)
	}
	if tfmRemote >= cardsRemote {
		t.Errorf("TrackFM remote (%vK) should undercut CaRDS (%vK) per Table 1",
			tfmRemote, cardsRemote)
	}
}

func TestFig4MaxUsePinsHotStructure(t *testing.T) {
	tab, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	mu := rowByName(t, tab, "max-use")
	ar := rowByName(t, tab, "all-remotable")
	muTime := cellF(t, tab, mu, 1)
	arTime := cellF(t, tab, ar, 1)
	if muTime >= arTime {
		t.Errorf("max-use (%v) should beat all-remotable (%v)", muTime, arTime)
	}
	// Figure 4's point: the refined policy beats every naive policy.
	for _, name := range []string{"random", "max-reach", "linear"} {
		r := rowByName(t, tab, name)
		if muTime > cellF(t, tab, r, 1) {
			t.Errorf("max-use (%v) should be fastest, %s = %v",
				muTime, name, cellF(t, tab, r, 1))
		}
	}
}

func TestFig5LinearRobustOnBFS(t *testing.T) {
	tab, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	lin := rowByName(t, tab, "linear")
	ar := rowByName(t, tab, "all-remotable")
	// "The Linear policy consistently outperforms other policies" and is
	// flat across k (it ignores k); all-remotable is the worst curve.
	base := cellF(t, tab, lin, 1)
	for col := 1; col <= 4; col++ {
		lv := cellF(t, tab, lin, col)
		if lv != base {
			t.Errorf("linear should be k-invariant: col %d = %v vs %v", col, lv, base)
		}
		if av := cellF(t, tab, ar, col); av <= lv {
			t.Errorf("all-remotable (%v) should lose to linear (%v) at col %d", av, lv, col)
		}
	}
}

func TestFig6MaxUseStrongOnAnalytics(t *testing.T) {
	tab, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	mu := rowByName(t, tab, "max-use")
	ar := rowByName(t, tab, "all-remotable")
	for col := 1; col <= 4; col++ {
		if cellF(t, tab, mu, col) >= cellF(t, tab, ar, col) {
			t.Errorf("max-use should beat all-remotable at col %d", col)
		}
	}
}

func TestFig7SelectiveRemotingWins(t *testing.T) {
	tab, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	ar := rowByName(t, tab, "all-remotable")
	arTime := cellF(t, tab, ar, 2)
	// Paper: Linear/MaxReach reach ~4x over all-remotable on ftfdapml;
	// we require at least 1.5x for the best policy at k=50.
	best := arTime
	for _, name := range []string{"linear", "max-reach", "max-use"} {
		if v := cellF(t, tab, rowByName(t, tab, name), 2); v < best {
			best = v
		}
	}
	if arTime/best < 1.5 {
		t.Errorf("best policy speedup = %.2fx, want >= 1.5x over all-remotable", arTime/best)
	}
}

func TestFig8Shape(t *testing.T) {
	tab, err := Fig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		cds := cellF(t, tab, i, 1)
		tfm := cellF(t, tab, i, 2)
		if cds >= tfm {
			t.Errorf("row %d: CaRDS (%v) should consistently beat TrackFM (%v)", i, cds, tfm)
		}
	}
	// Mira overtakes CaRDS as memory grows: the CaRDS/Mira gap at 100%
	// local memory must be wider than at 25%.
	gapLow := cellF(t, tab, 0, 1) / cellF(t, tab, 0, 3)
	gapHigh := cellF(t, tab, 3, 1) / cellF(t, tab, 3, 3)
	if gapHigh <= gapLow {
		t.Errorf("Mira should pull ahead with more memory: gap 25%%=%.2f vs 100%%=%.2f",
			gapLow, gapHigh)
	}
}

func TestFig9PointerChasersFavourCaRDS(t *testing.T) {
	tab, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	speedups := map[string]float64{}
	for i, r := range tab.Rows {
		speedups[r[0]] = cellF(t, tab, i, 3)
	}
	// Paper: CaRDS consistently outperforms TrackFM; arrays benefit
	// least (they run well even on TrackFM). The tree is our extension
	// beyond the paper's suite and is exempt: one-hop greedy prefetch
	// cannot hide serial chain latency on random BST lookups (see
	// EXPERIMENTS.md).
	for kind, s := range speedups {
		if kind == "tree" {
			continue
		}
		if s < 0.95 {
			t.Errorf("%s: CaRDS slower than TrackFM (%.2fx)", kind, s)
		}
	}
	if speedups["list"] <= 1.1 && speedups["tree"] <= 1.1 {
		t.Errorf("pointer chasers should show clear wins: list=%.2f tree=%.2f",
			speedups["list"], speedups["tree"])
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablation", "hybrid", "netsweep", "guards", "pipeline", "shard", "writeback", "replica", "chase", "wire"}
	if got := len(Experiments()); got != len(ids) {
		t.Fatalf("experiments = %d, want %d", got, len(ids))
	}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", Header: []string{"a", "b"},
		Rows:  [][]string{{"1", "2"}},
		Notes: []string{"n"},
	}
	var txt, md bytes.Buffer
	tab.Fprint(&txt)
	tab.Markdown(&md)
	for _, want := range []string{"== x: T ==", "a", "1", "note: n"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, txt.String())
		}
	}
	for _, want := range []string{"### x — T", "| a | b |", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown output missing %q:\n%s", want, md.String())
		}
	}
}

func TestDeterministicExperiments(t *testing.T) {
	a, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("fig4 not deterministic at [%d][%d]: %q vs %q",
					i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestAblationShapes(t *testing.T) {
	tab, err := Ablation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, r := range tab.Rows {
		rows[r[0]] = r
	}
	get := func(name string, col int) float64 {
		r, ok := rows[name]
		if !ok {
			t.Fatalf("missing variant %q", name)
		}
		var v float64
		fmt.Sscanf(r[col], "%f", &v)
		return v
	}
	// Versioning pays off when everything is local.
	if get("no code versioning", 1) <= get("full CaRDS", 1) {
		t.Error("removing code versioning should slow the all-pinned run")
	}
	// RGE and prefetching pay off on the constrained list traversal.
	if get("no redundant guard elimination", 3) <= get("full CaRDS", 3) {
		t.Error("removing RGE should slow the list sum")
	}
	if get("no prefetching", 3) <= get("full CaRDS", 3) {
		t.Error("removing prefetching should slow the list sum")
	}
	// Context-insensitive DSA merges Listing 1's structures and loses.
	if rows["context-insensitive DSA"][6] != "1" {
		t.Errorf("ctx-insensitive DSA found %s structures on Listing 1, want 1",
			rows["context-insensitive DSA"][6])
	}
	if rows["full CaRDS"][6] != "2" {
		t.Errorf("full DSA found %s structures on Listing 1, want 2", rows["full CaRDS"][6])
	}
	if get("context-insensitive DSA", 5) <= get("full CaRDS", 5) {
		t.Error("merged structures should defeat the Max Use policy on Listing 1")
	}
}

func TestHybridClosesHighMemoryGap(t *testing.T) {
	tab, err := HybridExp(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At 100% local memory, hybrid must land much closer to Mira than
	// max-use does (that is the point of the extension).
	last := len(tab.Rows) - 1
	muGap := cellF(t, tab, last, 4)
	hyGap := cellF(t, tab, last, 5)
	if hyGap >= muGap {
		t.Errorf("hybrid/Mira gap at 100%% = %.2f should beat max-use's %.2f", hyGap, muGap)
	}
	if hyGap > 1.5 {
		t.Errorf("hybrid should be within 1.5x of Mira at 100%% memory, got %.2f", hyGap)
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	var buf bytes.Buffer
	if err := tab.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.ID != "x" || len(decoded.Rows) != 1 || decoded.Rows[0][0] != "1" {
		t.Fatalf("decoded = %+v", decoded)
	}
}
