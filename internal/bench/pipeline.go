package bench

import (
	"fmt"
	"sync"
	"time"

	"cards/internal/faultnet"
	"cards/internal/remote"
)

// pipelineObjSize is the object granularity of the sweep: the runtime's
// default 4 KiB page-sized objects.
const pipelineObjSize = 4096

// pipelineDepths are the in-flight windows the sweep measures. Depth 1
// isolates the doorbell/demux overhead of the pipelined client itself
// (one op in flight behaves like the serial client plus framing).
var pipelineDepths = []int{1, 2, 4, 8, 16, 32}

// Pipeline measures remote read throughput of the serial client vs the
// pipelined client across window depths, over a real TCP loopback
// connection to an in-process server. Unlike the other experiments this
// one runs on wall-clock time, not the virtual cycle clock: it measures
// the real data path the simulated one models.
func Pipeline(cfg Config) (*Table, error) {
	reads := int(cfg.PipelineReads)
	if reads <= 0 {
		reads = 1024
	}
	return pipelineSweep(reads, pipelineObjSize, pipelineDepths, cfg.Chaos)
}

// PipelineSweep runs the depth sweep: `reads` remote reads of
// `objSize`-byte objects, once with the serial client and once with the
// pipelined client per depth. Rows report throughput and speedup over
// the serial baseline.
func PipelineSweep(reads, objSize int, depths []int) (*Table, error) {
	return pipelineSweep(reads, objSize, depths, "")
}

func pipelineSweep(reads, objSize int, depths []int, chaos string) (*Table, error) {
	srv := remote.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("pipeline: listen: %w", err)
	}
	defer srv.Close()

	// Under chaos, clients reach the server through the fault proxy and
	// dial with deadlines + retry/reconnect, so the sweep measures the
	// data path's throughput while it survives the schedule.
	var proxy *faultnet.Proxy
	if chaos != "" {
		fcfg, err := faultnet.ParseSpec(chaos)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		proxy, err = faultnet.NewProxy("127.0.0.1:0", addr, fcfg)
		if err != nil {
			return nil, fmt.Errorf("pipeline: proxy: %w", err)
		}
		defer proxy.Close()
		addr = proxy.Addr()
	}

	// Seed the far tier so reads return real payloads.
	nObjs := seedObjects(srv, objSize)

	serial, err := runSerial(addr, reads, objSize, nObjs, chaos != "")
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "pipeline",
		Title:  fmt.Sprintf("Remote read throughput, %d reads x %dB over TCP loopback", reads, objSize),
		Header: []string{"client", "depth", "reads/s", "MB/s", "vs serial"},
	}
	row := func(name string, depth string, d time.Duration) {
		rps := float64(reads) / d.Seconds()
		mbs := rps * float64(objSize) / 1e6
		t.Rows = append(t.Rows, []string{
			name, depth,
			fmt.Sprintf("%.0f", rps),
			fmt.Sprintf("%.1f", mbs),
			ratio(serial.Seconds() / d.Seconds()),
		})
	}
	row("serial", "-", serial)

	for _, depth := range depths {
		d, err := runPipelined(addr, reads, objSize, nObjs, depth, chaos != "")
		if err != nil {
			return nil, err
		}
		row("pipelined", fmt.Sprintf("%d", depth), d)
	}
	t.Notes = append(t.Notes,
		"wall-clock over real sockets (not the virtual cycle clock); depth = bounded in-flight window",
		"pipelined reads coalesce into READBATCH frames flushed through one buffered write (doorbell)")
	if proxy != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"chaos %q survived: %d forced disconnects, %d corrupted chunks, %d stalls across %d connections",
			chaos, proxy.Cuts(), proxy.Corruptions(), proxy.Stalls(), proxy.Conns()))
	}
	return t, nil
}

// chaosDialTuning is the retry budget chaos-mode clients dial with: tight
// backoff so throughput numbers stay meaningful, a deep enough reconnect
// budget to outlast any reasonable cut schedule.
func chaosClientOpts() remote.ClientOpts {
	return remote.ClientOpts{
		Timeout:   2 * time.Second,
		RetryMax:  64,
		RetryBase: time.Millisecond,
		RetryCap:  20 * time.Millisecond,
	}
}

// seedObjects writes a deterministic working set directly into the
// server's store and returns its object count.
func seedObjects(srv *remote.Server, objSize int) int {
	const nObjs = 64
	buf := make([]byte, objSize)
	for i := 0; i < nObjs; i++ {
		for j := range buf {
			buf[j] = byte(i + j)
		}
		srv.Store.Write(0, uint32(i), buf)
	}
	return nObjs
}

func runSerial(addr string, reads, objSize, nObjs int, chaos bool) (time.Duration, error) {
	var c *remote.Client
	var err error
	if chaos {
		c, err = remote.DialOpts(addr, chaosClientOpts())
	} else {
		c, err = remote.Dial(addr)
	}
	if err != nil {
		return 0, fmt.Errorf("pipeline: serial dial: %w", err)
	}
	defer c.Close()
	dst := make([]byte, objSize)
	start := time.Now()
	for i := 0; i < reads; i++ {
		if err := c.ReadObj(0, i%nObjs, dst); err != nil {
			return 0, fmt.Errorf("pipeline: serial read: %w", err)
		}
	}
	return time.Since(start), nil
}

func runPipelined(addr string, reads, objSize, nObjs, depth int, chaos bool) (time.Duration, error) {
	// Compression is pinned off: the sweep isolates window-depth scaling
	// against the serial client, which always ships raw bytes, and the
	// seeded ramp objects are maximally compressible — adaptive LZ would
	// turn the measurement into a CPU benchmark of the compressor. The
	// wire ladder (bench -exp wire) measures that trade-off explicitly.
	opts := remote.PipelineOpts{Window: depth, Compression: "off"}
	if chaos {
		co := chaosClientOpts()
		opts.Timeout, opts.RetryMax = co.Timeout, co.RetryMax
		opts.RetryBase, opts.RetryCap = co.RetryBase, co.RetryCap
		// Cap batch coalescing: a READBATCH response carrying the whole
		// window (up to 128 KiB at depth 32) in one frame can exceed every
		// possible cut budget of the schedule and replay forever. Four
		// 4 KiB objects per frame fit any sane cut spec's minimum draw.
		opts.MaxBatch = 4
	}
	c, err := remote.DialPipelined(addr, opts)
	if err != nil {
		return 0, fmt.Errorf("pipeline: dial depth %d: %w", depth, err)
	}
	defer c.Close()

	// Issue every read asynchronously; per-read destination buffers so
	// completions never overwrite each other.
	dsts := make([][]byte, depth*2)
	for i := range dsts {
		dsts[i] = make([]byte, objSize)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	wg.Add(reads)
	start := time.Now()
	for i := 0; i < reads; i++ {
		c.IssueRead(0, i%nObjs, dsts[i%len(dsts)], func(err error) {
			if err != nil {
				mu.Lock()
				if firstEr == nil {
					firstEr = err
				}
				mu.Unlock()
			}
			wg.Done()
		})
	}
	wg.Wait()
	d := time.Since(start)
	if firstEr != nil {
		return 0, fmt.Errorf("pipeline: depth %d read: %w", depth, firstEr)
	}
	return d, nil
}
