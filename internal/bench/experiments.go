package bench

import (
	"fmt"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/ir"
	"cards/internal/mira"
	"cards/internal/netsim"
	"cards/internal/policy"
	"cards/internal/stats"
	"cards/internal/trackfm"
	"cards/internal/workloads"
)

// Workload builders (fresh module per call: compilation mutates IR).

func (cfg Config) taxi() *workloads.Workload {
	return workloads.BuildTaxi(workloads.TaxiConfig{
		Trips: cfg.TaxiTrips, HotPasses: cfg.HotPasses, Seed: cfg.Seed,
	})
}

func (cfg Config) fdtd() *workloads.Workload {
	return workloads.BuildFDTD(workloads.FDTDConfig{N: cfg.FDTDSize, Steps: cfg.FDTDSteps})
}

func (cfg Config) bfs() *workloads.Workload {
	return workloads.BuildBFS(workloads.BFSConfig{
		Vertices: cfg.BFSVertices, Degree: cfg.BFSDegree,
		Trials: cfg.BFSTrials, Seed: cfg.Seed,
	})
}

// reserveFor scales the paper's remotable-memory reserves: 1 GB of the
// 31 GB analytics working set, 1 GB of ftfdapml's 8 GB, 256 MB of BFS's
// 1.2 GB (§5.1), with a floor of 24 objects so the cache can function.
// measured prefers the region-of-interest time when the workload
// declares one (GAP's BFS trials), falling back to whole-program time.
func measured(total, roi float64) float64 {
	if roi > 0 {
		return roi
	}
	return total
}

func reserveFor(name string, ws uint64) uint64 {
	var r uint64
	switch name {
	case "analytics":
		r = ws / 32
	case "ftfdapml":
		r = ws / 8
	case "bfs":
		r = ws / 5
	default:
		r = ws / 16
	}
	if floor := uint64(24 * 4096); r < floor {
		r = floor
	}
	return r
}

// runPolicy compiles a fresh copy of the workload and runs it under one
// policy. AllRemotable uses pinned+reserve as pure cache (the
// conservative baseline has no pinned region). The run publishes into
// cfg.Obs / cfg.Tracer when those are set.
func (cfg Config) runPolicy(build func() *workloads.Workload, pol policy.Kind, k float64,
	pinned, reserve uint64, seed int64) (*core.RunResult, error) {
	w := build()
	c, err := core.Compile(w.Module, core.CompileOptions{Tracer: cfg.Tracer})
	if err != nil {
		return nil, err
	}
	rc := core.RunConfig{
		Policy: pol, K: k, Seed: seed,
		PinnedBudget: pinned, RemotableBudget: reserve,
		Obs: cfg.Obs, Tracer: cfg.Tracer,
	}
	if pol == policy.AllRemotable {
		rc.PinnedBudget = 0
		rc.RemotableBudget = pinned + reserve
	}
	return c.Run(rc)
}

// Table1 measures the primitive overheads of Table 1: the cost of a
// guard/fault on a local object and on a remote object, for the CaRDS
// and TrackFM runtimes, as median virtual cycles over 100 trials.
func Table1(cfg Config) (*Table, error) {
	const trials = 100
	const obj = 4096

	measure := func(trackFMFlavour, write, remote bool) (float64, error) {
		nObjs := trials + 8
		budget := uint64(nObjs+8) * obj
		if remote {
			budget = uint64(16) * obj // force misses
		}
		rt := farmem.New(farmem.Config{
			PinnedBudget:    1 << 20,
			RemotableBudget: budget,
			TrackFMGuards:   trackFMFlavour,
		})
		if _, err := rt.RegisterDS(0, farmem.DSMeta{Name: "probe", ObjSize: obj}); err != nil {
			return 0, err
		}
		rt.SetPlacement(0, farmem.PlaceRemotable)
		addr, err := rt.DSAlloc(0, int64(nObjs*obj))
		if err != nil {
			return 0, err
		}
		// Materialize every object once.
		for i := 0; i < nObjs; i++ {
			if _, err := rt.Guard(addr+uint64(i*obj), true); err != nil {
				return 0, err
			}
		}
		var s stats.Sample
		if remote {
			// Small cache: object i was evicted long before trial i
			// touches it again; each guard is a remote fault.
			for i := 0; i < trials; i++ {
				before := rt.Clock().Now()
				if _, err := rt.Guard(addr+uint64(i*obj), write); err != nil {
					return 0, err
				}
				s.Observe(float64(rt.Clock().Now() - before))
			}
		} else {
			// Large cache: object 0 stays resident; every guard is the
			// local fast path.
			for i := 0; i < trials; i++ {
				before := rt.Clock().Now()
				if _, err := rt.Guard(addr, write); err != nil {
					return 0, err
				}
				s.Observe(float64(rt.Clock().Now() - before))
			}
		}
		return s.Median(), nil
	}

	t := &Table{
		ID:     "table1",
		Title:  "Primitive overheads, median cycles over 100 trials (paper Table 1)",
		Header: []string{"Runtime Event", "Local Cost", "Remote Cost", "Paper Local", "Paper Remote"},
		Notes: []string{
			"local = object resident (CaRDS: custody check + deref); remote = object fetched over the simulated 25 Gb/s link",
		},
	}
	rows := []struct {
		name    string
		trackFM bool
		write   bool
		pLocal  string
		pRemote string
	}{
		{"CaRDS read fault", false, false, "378", "59K"},
		{"CaRDS write fault", false, true, "384", "59K"},
		{"TrackFM read guard", true, false, "462", "46K"},
		{"TrackFM write guard", true, true, "579", "47K"},
	}
	for _, r := range rows {
		local, err := measure(r.trackFM, r.write, false)
		if err != nil {
			return nil, err
		}
		remote, err := measure(r.trackFM, r.write, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			r.name, fmt.Sprintf("%.0f", local), fmt.Sprintf("%.0fK", remote/1000),
			r.pLocal, r.pRemote,
		})
	}
	return t, nil
}

// Fig4 compares the remoting policies on Listing 1 with k=50% and local
// memory sized for exactly one of the two structures.
func Fig4(cfg Config) (*Table, error) {
	arraySize := cfg.TaxiTrips * 4
	nTimes := cfg.HotPasses
	build := func() *workloads.Workload {
		return &workloads.Workload{
			Name:            "listing1",
			Module:          ir.BuildListing1(arraySize, nTimes),
			WorkingSetBytes: uint64(2 * arraySize * 8),
		}
	}
	ws := build().WorkingSetBytes
	pinned := ws / 2 // one of the two structures fits
	reserve := reserveFor("listing1", ws)

	base, err := cfg.runPolicy(build, policy.AllRemotable, 50, pinned, reserve, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig4",
		Title:  "Remoting policies on Listing 1, k=50%, local memory = 1 structure (paper Fig. 4)",
		Header: []string{"Policy", "Runtime (s)", "vs all-remotable", "Pinned DS"},
		Notes: []string{
			"paper: the refined (Max Use) policy localizes ds2 and outperforms a naive choice; random may pick wrong",
		},
	}
	for _, pol := range policy.All() {
		res := base
		if pol != policy.AllRemotable {
			res, err = cfg.runPolicy(build, pol, 50, pinned, reserve, cfg.Seed)
			if err != nil {
				return nil, err
			}
		}
		t.Rows = append(t.Rows, []string{
			pol.String(), secs(res.Seconds),
			ratio(float64(base.Cycles) / float64(res.Cycles)),
			fmt.Sprintf("%v", res.PinnedIDs),
		})
	}
	return t, nil
}

// policySweep implements Figures 5-7: policies × k for one workload.
// Every configuration gets the same total local memory — half the
// working set: the CaRDS policies split it into pinned + the workload's
// remotable reserve, while the all-remotable baseline uses all of it as
// cache.
func (cfg Config) policySweep(id, title string, build func() *workloads.Workload, seed int64) (*Table, error) {
	w := build()
	ws := w.WorkingSetBytes
	local := ws / 2
	reserve := reserveFor(w.Name, ws)
	if reserve > local*3/4 {
		reserve = local * 3 / 4
	}
	pinned := local - reserve
	ks := []float64{25, 50, 75, 100}

	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"Policy", "k=25%", "k=50%", "k=75%", "k=100%"},
		Notes: []string{
			fmt.Sprintf("runtime in virtual seconds; working set %d KiB, pinned budget %d KiB, remotable reserve %d KiB",
				ws/1024, pinned/1024, reserve/1024),
		},
	}
	for _, pol := range policy.All() {
		row := []string{pol.String()}
		for _, k := range ks {
			res, err := cfg.runPolicy(build, pol, k, pinned, reserve, seed)
			if err != nil {
				return nil, fmt.Errorf("%s k=%v: %w", pol, k, err)
			}
			row = append(row, secs(measured(res.Seconds, res.ROISeconds)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5 sweeps the remoting policies on BFS.
func Fig5(cfg Config) (*Table, error) {
	return cfg.policySweep("fig5",
		"Remoting policies × k, BFS (paper Fig. 5; 19 structures)",
		func() *workloads.Workload { return cfg.bfs() }, cfg.Seed)
}

// Fig6 sweeps the remoting policies on the analytics workload.
func Fig6(cfg Config) (*Table, error) {
	return cfg.policySweep("fig6",
		"Remoting policies × k, analytics (paper Fig. 6; 22 structures)",
		func() *workloads.Workload { return cfg.taxi() }, cfg.Seed)
}

// Fig7 sweeps the remoting policies on ftfdapml.
func Fig7(cfg Config) (*Table, error) {
	return cfg.policySweep("fig7",
		"Remoting policies × k, ftfdapml (paper Fig. 7; 15 structures)",
		func() *workloads.Workload { return cfg.fdtd() }, cfg.Seed)
}

// Fig8 compares CaRDS against TrackFM and Mira on the analytics workload
// across local memory fractions.
func Fig8(cfg Config) (*Table, error) {
	build := func() *workloads.Workload { return cfg.taxi() }
	ws := build().WorkingSetBytes
	reserve := reserveFor("analytics", ws)

	t := &Table{
		ID:    "fig8",
		Title: "CaRDS vs prior far-memory compilers, analytics (paper Fig. 8)",
		Header: []string{"Local mem", "CaRDS (s)", "TrackFM (s)", "Mira (s)",
			"CaRDS vs TrackFM", "CaRDS vs Mira"},
		Notes: []string{
			"CaRDS = max-use policy at k=50 (the strongest policy in Fig. 6 for analytics)",
			"paper: CaRDS up to ~2x over TrackFM; within ~20-25% of Mira at low memory; Mira wins as memory grows",
		},
	}
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		pinned := uint64(float64(ws) * frac)

		cds, err := cfg.runPolicy(build, policy.MaxUse, 50, pinned, reserve, cfg.Seed)
		if err != nil {
			return nil, err
		}

		tw := build()
		tc, err := trackfm.Compile(tw.Module)
		if err != nil {
			return nil, err
		}
		tres, err := tc.Run(trackfm.RunConfig{LocalMemory: pinned + reserve})
		if err != nil {
			return nil, err
		}

		compileFresh := func() *core.Compiled {
			c, cerr := core.Compile(build().Module, core.CompileOptions{})
			if cerr != nil {
				panic(cerr)
			}
			return c
		}
		mres, _, err := mira.Run(compileFresh(), compileFresh(), core.RunConfig{
			PinnedBudget: pinned, RemotableBudget: reserve,
		})
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", frac*100),
			secs(cds.Seconds), secs(tres.Seconds), secs(mres.Seconds),
			ratio(float64(tres.Cycles) / float64(cds.Cycles)),
			ratio(float64(mres.Cycles) / float64(cds.Cycles)),
		})
	}
	return t, nil
}

// Fig9 measures the per-structure prefetch speedup over TrackFM on the
// c[i] = a[i] + b[i] micro-suite.
func Fig9(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "CaRDS speedup over TrackFM, pointer-chasing sum suite (paper Fig. 9)",
		Header: []string{"Structure", "TrackFM (s)", "CaRDS (s)", "Speedup", "CaRDS prefetcher hits"},
		Notes: []string{
			"both systems all-remotable with 25% local memory: the delta is per-structure prefetching + guard cost",
			"paper: arrays run comparably; vectors/maps and other pointer chasers favour CaRDS consistently",
		},
	}
	for _, kind := range workloads.ChaseKinds {
		build := func() *workloads.Workload {
			w, err := workloads.BuildChase(kind, workloads.ChaseConfig{N: cfg.ChaseN, Seed: cfg.Seed})
			if err != nil {
				panic(err)
			}
			return w
		}
		ws := build().WorkingSetBytes
		local := ws / 4
		if floor := uint64(8 * 4096); local < floor {
			local = floor
		}

		cds, err := cfg.runPolicy(build, policy.AllRemotable, 0, local, 0, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%s cards: %w", kind, err)
		}

		tw := build()
		tc, err := trackfm.Compile(tw.Module)
		if err != nil {
			return nil, err
		}
		tres, err := tc.Run(trackfm.RunConfig{LocalMemory: local})
		if err != nil {
			return nil, fmt.Errorf("%s trackfm: %w", kind, err)
		}
		if cds.MainResult != tres.MainResult {
			return nil, fmt.Errorf("%s: checksum mismatch CaRDS=%#x TrackFM=%#x",
				kind, cds.MainResult, tres.MainResult)
		}

		t.Rows = append(t.Rows, []string{
			kind, secs(tres.Seconds), secs(cds.Seconds),
			ratio(float64(tres.Cycles) / float64(cds.Cycles)),
			fmt.Sprintf("%d", cds.TotalPrefetchHits()),
		})
	}
	return t, nil
}

var _ = netsim.DefaultHz
