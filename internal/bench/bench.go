// Package bench regenerates every table and figure of the paper's
// evaluation (§5) on the reproduction stack:
//
//	Table 1  — primitive guard/fault costs, CaRDS vs TrackFM
//	Figure 4 — remoting policies on Listing 1 at k=50%
//	Figure 5 — remoting policies × k for BFS
//	Figure 6 — remoting policies × k for the analytics workload
//	Figure 7 — remoting policies × k for ftfdapml
//	Figure 8 — CaRDS vs TrackFM vs Mira across local memory
//	Figure 9 — per-structure prefetch speedup vs TrackFM
//
// Each experiment returns a Table whose rows mirror what the paper
// plots; absolute numbers differ (simulated substrate, scaled working
// sets — see DESIGN.md) but the comparisons are the reproduction target.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cards/internal/obs"
)

// Table is one experiment's output.
type Table struct {
	ID     string // "table1", "fig4", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "*%s*\n\n", n)
	}
}

// Config scales the experiments. Working sets shrink by ~2^6..2^8 from
// the paper's multi-GB sizes so every figure regenerates in seconds; the
// local-memory *fractions* driving the comparisons are preserved.
type Config struct {
	// Analytics scale (paper: 165M trips / 31 GB working set).
	TaxiTrips int64
	HotPasses int64
	// ftfdapml scale (paper: 8 GB working set).
	FDTDSize  int64
	FDTDSteps int64
	// BFS scale (paper: 1.2 GB working set).
	BFSVertices int64
	BFSDegree   int64
	BFSTrials   int64
	// Figure 9 scale (paper: 7 GB working set).
	ChaseN int64
	// PipelineReads is the number of remote reads per client in the
	// pipeline-depth sweep (real TCP loopback, wall-clock).
	PipelineReads int64
	// WritebackWrites is the length of the dirty walk in the write-back
	// sweep (real TCP loopback, wall-clock).
	WritebackWrites int64
	// ChaseWalk is the number of dependent hops walked per mode in the
	// traversal-offload sweep (real TCP loopback, wall-clock).
	ChaseWalk int64
	// Chaos, when non-empty, routes the pipeline sweep through a fault
	// proxy with this schedule spec (see faultnet.ParseSpec) and dials
	// the clients with deadlines + retry/reconnect enabled.
	Chaos string
	// Seed drives data generation and the Random policy.
	Seed int64

	// Obs, when non-nil, is a shared metric registry every experiment
	// run publishes into (latency histograms accumulate across runs;
	// counters reflect the last run that published them).
	Obs *obs.Registry
	// Tracer, when non-nil, receives runtime events from every run into
	// one bounded ring for Chrome-trace export (-trace-out).
	Tracer *obs.Tracer
}

// Quick returns the configuration used by unit tests and testing.B
// benchmarks: small enough for CI, large enough that the paper's
// comparisons still hold directionally.
func Quick() Config {
	return Config{
		TaxiTrips: 1 << 11, HotPasses: 4,
		FDTDSize: 8, FDTDSteps: 2,
		BFSVertices: 512, BFSDegree: 6, BFSTrials: 2,
		ChaseN:          4096,
		PipelineReads:   1024,
		WritebackWrites: 512,
		ChaseWalk:       1024,
		Seed:            42,
	}
}

// Default returns the cardsbench CLI configuration (~seconds per figure).
func Default() Config {
	return Config{
		TaxiTrips: 1 << 14, HotPasses: 6,
		FDTDSize: 16, FDTDSteps: 3,
		BFSVertices: 2048, BFSDegree: 8, BFSTrials: 3,
		ChaseN:          16384,
		PipelineReads:   8192,
		WritebackWrites: 2048,
		ChaseWalk:       4096,
		Seed:            42,
	}
}

// All runs every experiment and prints the tables to w.
func All(cfg Config, w io.Writer) error {
	for _, exp := range Experiments() {
		t, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("bench %s: %w", exp.ID, err)
		}
		t.Fprint(w)
	}
	return nil
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID    string
	Paper string // what the paper artifact shows
	Run   func(Config) (*Table, error)
}

// Experiments lists every regenerable artifact in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Primitive guard/fault overheads (median cycles, 100 trials)", Table1},
		{"fig4", "Remoting policies on Listing 1, k=50%", Fig4},
		{"fig5", "Remoting policies × k, BFS", Fig5},
		{"fig6", "Remoting policies × k, analytics", Fig6},
		{"fig7", "Remoting policies × k, ftfdapml", Fig7},
		{"fig8", "CaRDS vs TrackFM vs Mira across local memory, analytics", Fig8},
		{"fig9", "Prefetch speedup over TrackFM per data structure", Fig9},
		{"ablation", "Design-choice ablations (beyond the paper)", Ablation},
		{"hybrid", "Hybrid policy extension vs Mira (beyond the paper)", HybridExp},
		{"netsweep", "Network sensitivity sweep (beyond the paper)", NetSweep},
		{"guards", "Dynamic guard check census (paper §5.1 claim)", GuardCensus},
		{"pipeline", "Pipelined vs serial remote reads × window depth, TCP loopback (beyond the paper)", Pipeline},
		{"shard", "Sharded far-tier read bandwidth × backend count, TCP loopback (beyond the paper)", Shard},
		{"writeback", "Sync vs async batched dirty write-back, TCP loopback with injected RTT (beyond the paper)", Writeback},
		{"replica", "Replicated far-tier write amplification + failover latency, TCP loopback with injected RTT (beyond the paper)", Replica},
		{"chase", "Server-side traversal offload vs per-hop pointer chasing, TCP loopback with injected RTT (beyond the paper)", Chase},
		{"wire", "Bytes-on-wire and throughput across the compact/compression/range-writeback ladder, bandwidth-shaped TCP loopback (beyond the paper)", Wire},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func secs(s float64) string  { return fmt.Sprintf("%.4f", s) }
func ratio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// JSON renders the table as a JSON object (machine consumption: CI
// trend tracking, plotting scripts).
func (t *Table) JSON(w io.Writer) error {
	type payload struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload{
		ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
	})
}
