package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cards/internal/farmem"
	"cards/internal/faultnet"
	"cards/internal/obs"
	"cards/internal/remote"
	"cards/internal/replica"
)

// replicaFleet is the backend count every row runs against; only the
// replication factor varies, so the R=1 row is the same fleet without
// redundancy, not a smaller one.
const replicaFleet = 3

// replicaCounts sweeps the group size: unreplicated baseline, the
// default R=2, and the full three-way group.
var replicaCounts = []int{1, 2, 3}

// replicaObjs is the striped working set per run.
const replicaObjs = 256

// replicaNetLatency is injected into every server-side op, the same
// RTT-dominant regime the shard sweep measures in — fan-out cost and
// failover hiccups are both invisible on raw loopback.
const replicaNetLatency = 200 * time.Microsecond

// replicaKillAfter / replicaReadFor frame the failover measurement: a
// serial read loop against one object, its primary killed partway
// through, with the worst post-kill read latency reported — that single
// op is the one that rode through the promotion.
const (
	replicaKillAfter = 150 * time.Millisecond
	replicaReadFor   = 600 * time.Millisecond
)

// Replica measures what replication costs on the write path and what
// it buys on the read path: dirty-write throughput at R=1/2/3 over the
// same three-backend fleet (amplification = backend sub-writes per
// client write), and for R>1 the observed failover latency when the
// measured object's primary is killed mid-read-stream — no operation
// fails, one of them just pays the promotion.
func Replica(cfg Config) (*Table, error) {
	writes := int(cfg.WritebackWrites) * 2
	if writes <= 0 {
		writes = 1024
	}

	t := &Table{
		ID: "replica",
		Title: fmt.Sprintf("Replicated far-tier write cost and failover, %d writes x %dB, %d backends",
			writes, pipelineObjSize, replicaFleet),
		Header: []string{"replicas", "amplification", "writes/s", "vs R=1", "failover (ms)"},
	}
	var base time.Duration
	for _, r := range replicaCounts {
		d, amp, failover, err := runReplicated(r, writes, pipelineObjSize)
		if err != nil {
			return nil, err
		}
		if r == 1 {
			base = d
		}
		fo := "-"
		if r > 1 {
			fo = fmt.Sprintf("%.1f", float64(failover.Microseconds())/1000)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%.2f", amp),
			fmt.Sprintf("%.0f", float64(writes)/d.Seconds()),
			ratio(base.Seconds() / d.Seconds()),
			fo,
		})
	}
	t.Notes = append(t.Notes,
		"same 3-backend fleet on every row; each object lives on its top-R rendezvous-ranked backends, writes ack at W=1",
		fmt.Sprintf("each backend connection carries %v injected service latency per op (faultnet)", replicaNetLatency),
		"amplification = backend sub-writes per client write (gated-out members are skipped, so it can undershoot R)",
		"failover = worst single-read latency after the measured object's primary is killed mid-stream; the read fails over, it does not fail")
	return t, nil
}

// runReplicated starts the fleet, times `writes` async replicated
// writes, then (for R>1) kills the measured object's primary under a
// serial read loop and reports the worst post-kill read.
func runReplicated(r, writes, objSize int) (d time.Duration, amp float64, failover time.Duration, err error) {
	servers := make([]*remote.Server, replicaFleet)
	backends := make([]farmem.Store, replicaFleet)
	for i := 0; i < replicaFleet; i++ {
		srv := remote.NewServer()
		seed := int64(i + 1)
		srv.ConnWrap = func(c io.ReadWriteCloser) io.ReadWriteCloser {
			return faultnet.Wrap(c, faultnet.Config{Latency: replicaNetLatency, Seed: seed})
		}
		addr, lerr := srv.Listen("127.0.0.1:0")
		if lerr != nil {
			return 0, 0, 0, fmt.Errorf("replica: listen: %w", lerr)
		}
		defer srv.Close()
		servers[i] = srv
		c, derr := remote.DialAutoOpts(addr, remote.DialConfig{
			Timeout:   250 * time.Millisecond,
			RetryMax:  1,
			RetryBase: time.Millisecond,
			RetryCap:  10 * time.Millisecond,
			Window:    8,
			MaxBatch:  4,
		})
		if derr != nil {
			return 0, 0, 0, fmt.Errorf("replica: dial backend %d: %w", i, derr)
		}
		backends[i] = c
	}
	reg := obs.NewRegistry()
	rs, rerr := replica.New(backends, replica.Options{
		Replicas:         r,
		BreakerThreshold: 4,
		ProbeEvery:       20 * time.Millisecond,
		Obs:              reg,
	})
	if rerr != nil {
		return 0, 0, 0, rerr
	}
	defer rs.Close() // closes the clients (io.Closer backends)

	// Timed write sweep: per-slot source buffers sized to the window so
	// a completion never races a reissue of the same slot.
	dsts := make([][]byte, 64)
	for i := range dsts {
		dsts[i] = make([]byte, objSize)
		for j := range dsts[i] {
			dsts[i][j] = byte(i + j)
		}
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	wg.Add(writes)
	start := time.Now()
	for i := 0; i < writes; i++ {
		rs.IssueWrite(0, i%replicaObjs, dsts[i%len(dsts)], func(err error) {
			if err != nil {
				mu.Lock()
				if firstEr == nil {
					firstEr = err
				}
				mu.Unlock()
			}
			wg.Done()
		})
	}
	wg.Wait()
	d = time.Since(start)
	if firstEr != nil {
		return 0, 0, 0, fmt.Errorf("replica: R=%d write sweep: %w", r, firstEr)
	}
	snap := reg.Snapshot()
	sub := uint64(0)
	for i := 0; i < replicaFleet; i++ {
		sub += snap.Counters[obs.Key(replica.MetricReplicaWrites, "backend", fmt.Sprintf("%d", i))]
	}
	amp = float64(sub) / float64(writes)

	if r == 1 {
		return d, amp, 0, nil
	}

	// Failover: serial reads of one object while its primary dies.
	var gbuf [replica.MaxReplicas]int
	primary := rs.GroupOf(0, 0, gbuf[:0])[0]
	go func() {
		time.Sleep(replicaKillAfter)
		servers[primary].Drain(10 * time.Millisecond)
	}()
	dst := make([]byte, objSize)
	killAt := start.Add(d + replicaKillAfter)
	for stop := time.Now().Add(replicaReadFor); time.Now().Before(stop); {
		t0 := time.Now()
		if rerr := rs.ReadObj(0, 0, dst); rerr != nil {
			return 0, 0, 0, fmt.Errorf("replica: R=%d read during failover: %w", r, rerr)
		}
		if lat := time.Since(t0); t0.After(killAt) && lat > failover {
			failover = lat
		}
	}
	return d, amp, failover, nil
}
