package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"cards/internal/core"
	"cards/internal/faultnet"
	"cards/internal/ir"
	"cards/internal/obs"
	"cards/internal/policy"
	"cards/internal/remote"
	"cards/internal/workloads"
)

const (
	// wireBandwidth is the simulated link capacity: every byte through
	// the server connection pays serialization delay at this rate, so
	// bytes saved on the wire convert directly into wall-clock time.
	wireBandwidth = 24 << 20 // 24 MiB/s
)

// wireMode is one rung of the wire-efficiency feature ladder.
type wireMode struct {
	name        string
	noCompact   bool
	compression string
	rangeWB     bool
}

var wireModes = []wireMode{
	{"legacy", true, "off", false},
	{"compact", false, "off", false},
	{"compact+lz", false, "", false},
	{"compact+lz+range", false, "", true},
}

// Wire measures bytes-on-wire per remote operation and end-to-end run
// time at a fixed simulated link bandwidth, across the wire-tier
// feature ladder: legacy tagged batches, the bit-packed compact
// encoding, compact plus adaptive per-object LZ compression, and
// compact plus compression plus compiler-aided dirty-range write-back.
// Two compiled workloads cover the two traffic shapes: the analytics
// table scan (bulk column reads and writes, highly compressible ramp
// data) and the pointer chase (small dependent reads, header-dominated
// frames).
func Wire(cfg Config) (*Table, error) {
	works := []struct {
		name  string
		build func() (*ir.Module, error)
	}{
		{"analytics", func() (*ir.Module, error) {
			return workloads.BuildTaxi(workloads.TaxiConfig{
				Trips: cfg.TaxiTrips, HotPasses: cfg.HotPasses, Seed: cfg.Seed}).Module, nil
		}},
		{"pointerchase", func() (*ir.Module, error) {
			w, err := workloads.BuildChase("list", workloads.ChaseConfig{N: cfg.ChaseN, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			return w.Module, nil
		}},
	}

	t := &Table{
		ID: "wire",
		Title: fmt.Sprintf("Wire efficiency across the compact/compression/range ladder, %d MiB/s simulated link",
			wireBandwidth>>20),
		Header: []string{"workload", "mode", "KB/op", "wire MB", "ops", "wall", "bytes vs legacy", "tput vs legacy"},
	}
	for _, w := range works {
		var legacy *wireResult
		for _, mode := range wireModes {
			r, err := runWire(w.build, mode)
			if err != nil {
				return nil, fmt.Errorf("wire %s/%s: %w", w.name, mode.name, err)
			}
			if mode.name == "legacy" {
				legacy = r
			} else if r.checksum != legacy.checksum {
				return nil, fmt.Errorf("wire %s/%s: checksum %#x != legacy %#x — the wire tier changed the program's result",
					w.name, mode.name, r.checksum, legacy.checksum)
			}
			t.Rows = append(t.Rows, []string{
				w.name, mode.name,
				fmt.Sprintf("%.2f", r.perOp()/1024),
				fmt.Sprintf("%.2f", float64(r.wireBytes)/(1<<20)),
				fmt.Sprintf("%d", r.ops),
				r.elapsed.Round(time.Millisecond).String(),
				ratio(legacy.perOp() / r.perOp()),
				ratio(legacy.elapsed.Seconds() / r.elapsed.Seconds()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"every mode runs the same compiled workload to the same checksum; only the wire tier differs",
		"KB/op = total frame bytes both directions / (remote fetches + write-backs); wall-clock includes the final drain",
		fmt.Sprintf("the link serializes at %d MiB/s each way, so 'tput vs legacy' tracks how much of the byte saving survives as end-to-end speedup", wireBandwidth>>20),
		"legacy = compact tier disabled (the pre-compact protocol, byte-identical to older servers); range write-back additionally needs the compiler's guard spans, threaded here by the standard pass pipeline")
	return t, nil
}

// wireResult is one mode's measurement.
type wireResult struct {
	wireBytes uint64
	ops       uint64
	elapsed   time.Duration
	checksum  uint64
}

func (r *wireResult) perOp() float64 {
	if r.ops == 0 {
		return 0
	}
	return float64(r.wireBytes) / float64(r.ops)
}

// runWire executes one compiled workload over a fresh bandwidth-shaped
// server with the mode's wire features and returns the traffic tally.
func runWire(build func() (*ir.Module, error), mode wireMode) (*wireResult, error) {
	srv := remote.NewServer()
	srv.ConnWrap = func(c io.ReadWriteCloser) io.ReadWriteCloser {
		return faultnet.Wrap(c, faultnet.Config{Bandwidth: wireBandwidth, Seed: 1})
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("listen: %w", err)
	}
	defer srv.Close()

	reg := obs.NewRegistry()
	cl, err := remote.DialPipelined(addr, remote.PipelineOpts{
		Obs:         reg,
		NoCompact:   mode.noCompact,
		Compression: mode.compression,
	})
	if err != nil {
		return nil, fmt.Errorf("dial: %w", err)
	}
	defer cl.Close()

	m, err := build()
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(m, core.CompileOptions{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := c.Run(core.RunConfig{
		Policy:          policy.AllRemotable,
		PinnedBudget:    0,
		RemotableBudget: 8 * 4096,
		Store:           cl,
		RangeWriteback:  mode.rangeWB,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	var wire uint64
	prefix := remote.MetricWireBytes + "{"
	for k, v := range reg.Snapshot().Counters {
		if k == remote.MetricWireBytes || strings.HasPrefix(k, prefix) {
			wire += v
		}
	}
	ops := res.Runtime.RemoteFetches
	for _, d := range res.PerDS {
		ops += d.WriteBacks
	}
	return &wireResult{wireBytes: wire, ops: ops, elapsed: elapsed, checksum: res.MainResult}, nil
}
