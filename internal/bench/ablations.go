package bench

import (
	"fmt"

	"cards/internal/core"
	"cards/internal/dsa"
	"cards/internal/guards"
	"cards/internal/ir"
	"cards/internal/mira"
	"cards/internal/netsim"
	"cards/internal/policy"
	"cards/internal/trackfm"
	"cards/internal/workloads"
)

// Ablation measures what each CaRDS design choice contributes
// (DESIGN.md's per-design-choice benches). Each mechanism is probed on
// the workload where it matters:
//
//   - code versioning & guard elision → analytics with ALL structures
//     pinned (k=100, ample memory): the run cost is pure instrumentation,
//     so removing versioning re-exposes every guard;
//   - redundant guard elimination → the linked-list sum (field accesses
//     to the same node are RGE's bread and butter), memory-constrained;
//   - prefetching → the same constrained list traversal;
//   - context-sensitive DSA → Listing 1 under Max Use (Fig. 4's setup):
//     without cloning, ds1/ds2 merge and the policy cannot separate them.
type ablationVariant struct {
	name    string
	compile core.CompileOptions
	noPf    bool
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{name: "full CaRDS"},
		{
			name: "no redundant guard elimination",
			compile: core.CompileOptions{Guards: guards.Options{
				ElideRedundant: false, Version: true,
			}},
		},
		{
			name: "induction-only elision (TrackFM-style)",
			compile: core.CompileOptions{Guards: guards.Options{
				ElideRedundant: true, InductionOnlyElision: true, Version: true,
			}},
		},
		{
			name: "no code versioning",
			compile: core.CompileOptions{Guards: guards.Options{
				ElideRedundant: true, Version: false,
			}},
		},
		{name: "no prefetching", noPf: true},
		{
			name:    "context-insensitive DSA",
			compile: core.CompileOptions{DSA: dsa.Options{ContextInsensitive: true}},
		},
	}
}

// Ablation builds the ablation table.
func Ablation(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "ablation",
		Title: "Design-choice ablations (beyond the paper)",
		Header: []string{"Variant", "Analytics all-pinned (s)", "vs full",
			"List sum (s)", "vs full", "Listing1 (s)", "L1 structures"},
		Notes: []string{
			"analytics: max-use k=100 with memory for everything — cost is pure instrumentation, exposing versioning/elision",
			"list sum: all-remotable, 25% local memory — exposes prefetching and per-field guard elision",
			"Listing 1: Fig. 4 setup under max-use — context-insensitive DSA merges ds1/ds2 so no policy can separate them",
		},
	}

	taxiWS := cfg.taxi().WorkingSetBytes
	listW := func() *workloads.Workload {
		w, err := workloads.BuildChase("list", workloads.ChaseConfig{N: cfg.ChaseN, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		return w
	}
	listWS := listW().WorkingSetBytes
	listLocal := listWS / 4
	if floor := uint64(8 * 4096); listLocal < floor {
		listLocal = floor
	}
	l1Size := cfg.TaxiTrips * 4
	l1WS := uint64(2 * l1Size * 8)

	var fullTaxi, fullList float64
	for _, v := range ablationVariants() {
		// (1) Analytics, everything pinned.
		tc, err := core.Compile(cfg.taxi().Module, v.compile)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		tres, err := tc.Run(core.RunConfig{
			Policy: policy.MaxUse, K: 100, Seed: cfg.Seed,
			PinnedBudget: 2 * taxiWS, RemotableBudget: reserveFor("analytics", taxiWS),
			DisablePrefetch: v.noPf,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation %q analytics: %w", v.name, err)
		}

		// (2) Constrained list traversal.
		lc, err := core.Compile(listW().Module, v.compile)
		if err != nil {
			return nil, err
		}
		lres, err := lc.Run(core.RunConfig{
			Policy: policy.AllRemotable, Seed: cfg.Seed,
			PinnedBudget: 0, RemotableBudget: listLocal,
			DisablePrefetch: v.noPf,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation %q list: %w", v.name, err)
		}

		// (3) Listing 1 under Max Use (Fig. 4 setup).
		oc, err := core.Compile(ir.BuildListing1(l1Size, cfg.HotPasses), v.compile)
		if err != nil {
			return nil, err
		}
		ores, err := oc.Run(core.RunConfig{
			Policy: policy.MaxUse, K: 50, Seed: cfg.Seed,
			PinnedBudget: l1WS / 2, RemotableBudget: reserveFor("listing1", l1WS),
			DisablePrefetch: v.noPf,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation %q listing1: %w", v.name, err)
		}

		if v.name == "full CaRDS" {
			fullTaxi, fullList = tres.Seconds, lres.Seconds
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			secs(tres.Seconds), ratio(tres.Seconds / fullTaxi),
			secs(lres.Seconds), ratio(lres.Seconds / fullList),
			secs(ores.Seconds),
			fmt.Sprintf("%d", len(oc.DSA.DS)),
		})
	}
	return t, nil
}

// HybridExp evaluates the Hybrid policy extension (the paper's
// future-work direction) in Figure 8's setting: analytics across local
// memory fractions, against the paper's best static policy and the Mira
// oracle. Hybrid pins the ranked-hot structures eagerly and lets the
// rest claim leftover pinned memory at allocation time, so it should
// track Mira much more closely as memory grows.
func HybridExp(cfg Config) (*Table, error) {
	build := func() *workloads.Workload { return cfg.taxi() }
	ws := build().WorkingSetBytes
	reserve := reserveFor("analytics", ws)

	t := &Table{
		ID:    "hybrid",
		Title: "Hybrid policy extension vs Max Use and Mira, analytics (beyond the paper)",
		Header: []string{"Local mem", "MaxUse (s)", "Hybrid (s)", "Mira (s)",
			"MaxUse/Mira", "Hybrid/Mira"},
		Notes: []string{
			"hybrid = top-k by use score pinned eagerly, remainder placed linearly — the future-work policy the paper sketches",
		},
	}
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		pinned := uint64(float64(ws) * frac)

		mu, err := cfg.runPolicy(build, policy.MaxUse, 50, pinned, reserve, cfg.Seed)
		if err != nil {
			return nil, err
		}
		hy, err := cfg.runPolicy(build, policy.Hybrid, 50, pinned, reserve, cfg.Seed)
		if err != nil {
			return nil, err
		}
		compileFresh := func() *core.Compiled {
			c, cerr := core.Compile(build().Module, core.CompileOptions{})
			if cerr != nil {
				panic(cerr)
			}
			return c
		}
		mi, _, err := mira.Run(compileFresh(), compileFresh(), core.RunConfig{
			PinnedBudget: pinned, RemotableBudget: reserve,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", frac*100),
			secs(mu.Seconds), secs(hy.Seconds), secs(mi.Seconds),
			ratio(mu.Seconds / mi.Seconds),
			ratio(hy.Seconds / mi.Seconds),
		})
	}
	return t, nil
}

// NetSweep is a robustness analysis beyond the paper: the Fig. 8 CaRDS
// vs TrackFM comparison re-run across interconnect generations, from
// 100 Gb/s RDMA (4x the paper's bandwidth, half its round trip) down to
// a 10x-slower commodity link. The paper's conclusion should not depend
// on the exact 25 Gb/s ConnectX-4 point — and the sweep shows where it
// strengthens (slower networks make policy quality matter more).
func NetSweep(cfg Config) (*Table, error) {
	build := func() *workloads.Workload { return cfg.taxi() }
	ws := build().WorkingSetBytes
	reserve := reserveFor("analytics", ws)
	// The constrained regime: both systems must actually use the network
	// (with ample memory, neither does and the sweep is flat).
	pinned := ws / 4

	type netpoint struct {
		name   string
		rttMul float64
		bwMul  float64
	}
	points := []netpoint{
		{"100 Gb/s, low-lat (0.5x RTT, 4x BW)", 0.5, 4},
		{"25 Gb/s (paper baseline)", 1, 1},
		{"10 Gb/s (2x RTT, 0.4x BW)", 2, 0.4},
		{"commodity (10x RTT, 0.1x BW)", 10, 0.1},
	}

	t := &Table{
		ID:     "netsweep",
		Title:  "Network sensitivity: CaRDS (max-use k=50) vs TrackFM, analytics (beyond the paper)",
		Header: []string{"Interconnect", "CaRDS (s)", "TrackFM (s)", "Speedup"},
		Notes: []string{
			"25% local memory (the constrained regime); RTT and bandwidth scaled around the Table 1 calibration",
		},
	}
	for _, pt := range points {
		model := netsim.DefaultCostModel()
		model.RemoteRTT = netsim.Cycles(float64(model.RemoteRTT) * pt.rttMul)
		model.BytesPerCycle *= pt.bwMul
		tfmModel := model

		w := build()
		c, err := core.Compile(w.Module, core.CompileOptions{})
		if err != nil {
			return nil, err
		}
		cds, err := c.Run(core.RunConfig{
			Policy: policy.MaxUse, K: 50, Seed: cfg.Seed,
			PinnedBudget: pinned, RemotableBudget: reserve,
			Model: model,
		})
		if err != nil {
			return nil, fmt.Errorf("netsweep %q cards: %w", pt.name, err)
		}

		tw := build()
		tc, err := trackfm.Compile(tw.Module)
		if err != nil {
			return nil, err
		}
		tres, err := tc.Run(trackfm.RunConfig{
			LocalMemory: pinned + reserve,
			Model:       tfmModel,
		})
		if err != nil {
			return nil, fmt.Errorf("netsweep %q trackfm: %w", pt.name, err)
		}
		if cds.MainResult != tres.MainResult {
			return nil, fmt.Errorf("netsweep %q: checksum mismatch", pt.name)
		}
		t.Rows = append(t.Rows, []string{
			pt.name, secs(cds.Seconds), secs(tres.Seconds),
			ratio(tres.Seconds / cds.Seconds),
		})
	}
	return t, nil
}

// GuardCensus quantifies the paper's §5.1 claim that "when all data
// structures are marked as remotable, approximately 10 billion guard
// checks are performed across the three benchmarks": for each workload
// it reports the dynamic guard checks executed under the conservative
// all-remotable configuration versus the best selective policy, and the
// static instrumentation counts. Absolute counts scale with our reduced
// working sets; the structure of the claim — guards vanish when
// structures pin — is the target.
func GuardCensus(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "guards",
		Title: "Dynamic guard checks: conservative vs selective (paper §5.1 claim)",
		Header: []string{"Workload", "All-rem guards", "All-rem derefs", "Best guards",
			"Best derefs", "Derefs cut", "Static", "Versioned"},
		Notes: []string{
			"paper: ~10 billion checks across the three benchmarks at full scale; our counts scale with the reduced working sets",
			"guards = custody checks executed; derefs = slow-path cards_deref calls — pinning turns derefs into ~5-cycle fall-throughs, and versioning removes the checks entirely",
			"best policy per Figs. 5-7: linear for BFS/ftfdapml, max-use for analytics",
		},
	}
	cases := []struct {
		build func() *workloads.Workload
		best  policy.Kind
	}{
		{func() *workloads.Workload { return cfg.bfs() }, policy.Linear},
		{func() *workloads.Workload { return cfg.taxi() }, policy.MaxUse},
		{func() *workloads.Workload { return cfg.fdtd() }, policy.Linear},
	}
	var totalCons, totalBest uint64
	for _, cse := range cases {
		w := cse.build()
		ws := w.WorkingSetBytes
		local := ws / 2
		reserve := reserveFor(w.Name, ws)
		if reserve > local*3/4 {
			reserve = local * 3 / 4
		}

		cons, err := cfg.runPolicy(cse.build, policy.AllRemotable, 0, local-reserve, reserve, cfg.Seed)
		if err != nil {
			return nil, err
		}
		best, err := cfg.runPolicy(cse.build, cse.best, 50, local-reserve, reserve, cfg.Seed)
		if err != nil {
			return nil, err
		}
		bw := cse.build()
		bc, err := core.Compile(bw.Module, core.CompileOptions{})
		if err != nil {
			return nil, err
		}
		totalCons += cons.Runtime.DerefCalls
		totalBest += best.Runtime.DerefCalls
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%d", cons.Runtime.GuardChecks),
			fmt.Sprintf("%d", cons.Runtime.DerefCalls),
			fmt.Sprintf("%d", best.Runtime.GuardChecks),
			fmt.Sprintf("%d", best.Runtime.DerefCalls),
			fmt.Sprintf("%.0f%%", 100*(1-float64(best.Runtime.DerefCalls)/float64(cons.Runtime.DerefCalls))),
			fmt.Sprintf("%d", bc.Guards.GuardsInserted),
			fmt.Sprintf("%d", bc.Guards.LoopsVersioned),
		})
	}
	t.Rows = append(t.Rows, []string{
		"TOTAL", "", fmt.Sprintf("%d", totalCons), "", fmt.Sprintf("%d", totalBest),
		fmt.Sprintf("%.0f%%", 100*(1-float64(totalBest)/float64(totalCons))), "", "",
	})
	return t, nil
}
