package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"cards/internal/faultnet"
	"cards/internal/rdma"
	"cards/internal/remote"
)

const (
	// chaseObjSize is a cache-line-ish list node: a payload word at
	// offset 0 and the tagged far pointer to the successor at offset 8.
	chaseObjSize = 64
	chaseNextOff = 8
	// chaseRingObjs is the chain length; the walk wraps around the ring
	// so any walk length exercises the same working set.
	chaseRingObjs = 4096
	// chaseNetLatency is injected into every server-side frame read:
	// loopback alone is CPU-bound and would hide exactly the RTT that
	// server-side traversal amortises across a whole path.
	chaseNetLatency = 200 * time.Microsecond
	chaseDS         = 1
)

// chaseDepths is the hop-budget sweep: one CHASEBATCH round trip
// returns up to this many dependent hops.
var chaseDepths = []int{2, 4, 8, 16, 32, 64}

// Chase measures dependent pointer chasing over a real TCP loopback
// connection with injected per-frame service latency: the per-hop
// baseline pays one READ round trip per object (pipelining cannot help
// — each hop's address is inside the previous hop's bytes), while the
// offloaded mode ships a traversal program to the server and gets the
// whole window's path back in one CHASEBATCH round trip.
func Chase(cfg Config) (*Table, error) {
	walk := int(cfg.ChaseWalk)
	if walk <= 0 {
		walk = 1024
	}

	srv := remote.NewServer()
	srv.ConnWrap = func(c io.ReadWriteCloser) io.ReadWriteCloser {
		return faultnet.Wrap(c, faultnet.Config{Latency: chaseNetLatency, Seed: 1})
	}
	seedChaseRing(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chase: listen: %w", err)
	}
	defer srv.Close()

	perhop, err := runChasePerHop(addr, walk)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "chase",
		Title: fmt.Sprintf("Server-side traversal offload vs per-hop pointer chasing, %d hops x %dB, %v injected RTT",
			walk, chaseObjSize, chaseNetLatency),
		Header: []string{"mode", "hop budget", "hops/s", "round trips", "vs per-hop"},
	}
	perhopHps := perhop.perSec()
	row := func(mode, depth string, r *chaseResult) {
		t.Rows = append(t.Rows, []string{
			mode, depth,
			fmt.Sprintf("%.0f", r.perSec()),
			fmt.Sprintf("%d", r.rtts),
			ratio(r.perSec() / perhopHps),
		})
	}
	row("per-hop", "-", perhop)
	for _, depth := range chaseDepths {
		r, err := runChaseOffload(addr, walk, depth)
		if err != nil {
			return nil, err
		}
		if r.sum != perhop.sum {
			return nil, fmt.Errorf("chase: offload depth %d checksum %#x != per-hop %#x", depth, r.sum, perhop.sum)
		}
		row("offload", fmt.Sprintf("%d", depth), r)
	}
	t.Notes = append(t.Notes,
		"wall-clock over real sockets; per-hop issues one dependent READ per object, offload one CHASEBATCH per hop-budget window",
		"both modes walk the same ring and their payload checksums are cross-checked byte-for-byte",
		"the speedup ceiling is the hop budget itself: each window collapses that many serial round trips into one")
	return t, nil
}

type chaseResult struct {
	hops    int
	rtts    int
	sum     uint64
	elapsed time.Duration
}

func (r *chaseResult) perSec() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.hops) / r.elapsed.Seconds()
}

// seedChaseRing writes the chain: object i's payload word at offset 0
// and a tagged far pointer at chaseNextOff to object (i+1) mod ring.
func seedChaseRing(srv *remote.Server) {
	buf := make([]byte, chaseObjSize)
	for i := 0; i < chaseRingObjs; i++ {
		for j := range buf {
			buf[j] = 0
		}
		binary.LittleEndian.PutUint64(buf[0:8], chaseVal(i))
		next := (i + 1) % chaseRingObjs
		addr := uint64(1)<<63 | uint64(chaseDS)<<48 | uint64(next)*chaseObjSize
		binary.LittleEndian.PutUint64(buf[chaseNextOff:chaseNextOff+8], addr)
		srv.Store.Write(chaseDS, uint32(i), buf)
	}
}

func chaseVal(i int) uint64 {
	return uint64(i)*0x9E3779B97F4A7C15 + 1
}

func runChasePerHop(addr string, walk int) (*chaseResult, error) {
	c, err := remote.DialPipelined(addr, remote.PipelineOpts{})
	if err != nil {
		return nil, fmt.Errorf("chase: dial: %w", err)
	}
	defer c.Close()

	buf := make([]byte, chaseObjSize)
	r := &chaseResult{hops: walk}
	idx := 0
	start := time.Now()
	for n := 0; n < walk; n++ {
		if err := c.ReadObj(chaseDS, idx, buf); err != nil {
			return nil, fmt.Errorf("chase: per-hop read %d: %w", n, err)
		}
		r.rtts++
		r.sum += binary.LittleEndian.Uint64(buf[0:8])
		word := binary.LittleEndian.Uint64(buf[chaseNextOff : chaseNextOff+8])
		idx = int(rdma.ChaseAddrOff(word) / chaseObjSize)
	}
	r.elapsed = time.Since(start)
	return r, nil
}

func runChaseOffload(addr string, walk, depth int) (*chaseResult, error) {
	c, err := remote.DialPipelined(addr, remote.PipelineOpts{})
	if err != nil {
		return nil, fmt.Errorf("chase: dial: %w", err)
	}
	defer c.Close()
	if !c.ChaseCapable() {
		return nil, fmt.Errorf("chase: server did not negotiate FeatChase")
	}

	r := &chaseResult{}
	idx := 0
	start := time.Now()
	for r.hops < walk {
		hops := depth
		if rem := walk - r.hops; rem < hops {
			hops = rem
		}
		res, err := c.Chase(rdma.ChaseReq{
			DS:      chaseDS,
			Start:   uint32(idx),
			ObjSize: chaseObjSize,
			NextOff: chaseNextOff,
			Hops:    uint32(hops),
		})
		if err != nil {
			return nil, fmt.Errorf("chase: offload window at hop %d: %w", r.hops, err)
		}
		if len(res.Hops) == 0 || res.Status != rdma.ChaseHops {
			return nil, fmt.Errorf("chase: window at hop %d stalled (status %d, %d hops) — the ring has no terminal", r.hops, res.Status, len(res.Hops))
		}
		r.rtts++
		for _, h := range res.Hops {
			r.sum += binary.LittleEndian.Uint64(h.Data[0:8])
		}
		r.hops += len(res.Hops)
		idx = int(rdma.ChaseAddrOff(res.Final) / chaseObjSize)
	}
	r.elapsed = time.Since(start)
	return r, nil
}
