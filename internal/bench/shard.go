package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cards/internal/farmem"
	"cards/internal/faultnet"
	"cards/internal/remote"
	"cards/internal/shardmap"
)

// shardCounts is the backend sweep: single-backend baseline up to the
// four-way fleet the acceptance target (≥1.8x aggregate read bandwidth)
// is measured at.
var shardCounts = []int{1, 2, 3, 4}

// shardWindow is the per-shard in-flight window. It is deliberately
// modest: with a small fixed window each connection is latency-bound,
// so adding backends adds in-flight capacity — the scaling the sweep is
// after. (The pipeline sweep covers per-connection depth scaling.)
const shardWindow = 4

// shardObjs is the striped working set per run; large enough that HRW
// spreads it near-evenly over four shards.
const shardObjs = 256

// shardNetLatency is injected into every server-side Read via the
// faultnet wrapper, standing in for the far tier's network round trip.
// Raw loopback is CPU-bound (a single-core box serializes client and
// servers, flattening the sweep); with a real per-connection service
// latency each backend's wait overlaps the others', which is exactly
// the RTT-dominant regime sharding exists for.
const shardNetLatency = 200 * time.Microsecond

// Shard measures aggregate remote read bandwidth of the sharded store
// over 1→4 in-process backends, each behind its own pipelined client
// with a fixed per-shard window. Like the pipeline sweep it runs on
// wall-clock time over real TCP loopback sockets.
func Shard(cfg Config) (*Table, error) {
	reads := int(cfg.PipelineReads) * 2
	if reads <= 0 {
		reads = 2048
	}

	t := &Table{
		ID: "shard",
		Title: fmt.Sprintf("Sharded far-tier read bandwidth, %d reads x %dB, window %d/shard",
			reads, pipelineObjSize, shardWindow),
		Header: []string{"backends", "reads/s", "MB/s", "vs 1 backend"},
	}
	var base time.Duration
	for _, n := range shardCounts {
		d, err := runSharded(n, reads, pipelineObjSize)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			base = d
		}
		rps := float64(reads) / d.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", rps),
			fmt.Sprintf("%.1f", rps*pipelineObjSize/1e6),
			ratio(base.Seconds() / d.Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"objects striped across backends by rendezvous hashing; reads fan out on per-shard pipelined connections",
		fmt.Sprintf("each backend connection carries %v injected service latency per read (faultnet), modeling the RTT-dominant far-memory regime; backends overlap those waits", shardNetLatency),
		fmt.Sprintf("fixed window of %d per shard: one shard's full window never stalls the others", shardWindow))
	return t, nil
}

// runSharded starts n in-process servers, stripes the working set over
// them through a ShardedStore, and times `reads` async reads issued
// through the store — one issuer goroutine per shard, so a full window
// on one backend never blocks issue to the others.
func runSharded(n, reads, objSize int) (time.Duration, error) {
	servers := make([]*remote.Server, n)
	backends := make([]farmem.Store, n)
	for i := 0; i < n; i++ {
		srv := remote.NewServer()
		seed := int64(i + 1)
		srv.ConnWrap = func(c io.ReadWriteCloser) io.ReadWriteCloser {
			return faultnet.Wrap(c, faultnet.Config{Latency: shardNetLatency, Seed: seed})
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return 0, fmt.Errorf("shard: listen: %w", err)
		}
		defer srv.Close()
		servers[i] = srv
		c, err := remote.DialPipelined(addr, remote.PipelineOpts{Window: shardWindow})
		if err != nil {
			return 0, fmt.Errorf("shard: dial backend %d: %w", i, err)
		}
		defer c.Close()
		backends[i] = c
	}
	ss, err := shardmap.NewSharded(backends, shardmap.Options{})
	if err != nil {
		return 0, err
	}
	// Backends are closed by the deferred client Close calls above.

	// Seed each object directly on its owning backend — the placement the
	// sharded store will route reads by. Seeding bypasses the injected
	// read latency only in batching: writes ride the same wrapped conns.
	buf := make([]byte, objSize)
	for i := 0; i < shardObjs; i++ {
		for j := range buf {
			buf[j] = byte(i + j)
		}
		if err := ss.WriteObj(0, i, buf); err != nil {
			return 0, fmt.Errorf("shard: seed: %w", err)
		}
	}

	// Partition the read sequence by owning shard up front. IssueRead on
	// a full pipelined window blocks (self-pacing), so a single issuer
	// would serialize the fleet on whichever shard fills first; one
	// issuer per shard keeps every window full independently.
	ops := make([][]int, n)
	for i := 0; i < reads; i++ {
		obj := i % shardObjs
		s := ss.ShardOf(0, obj)
		ops[s] = append(ops[s], obj)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstEr error
	)
	wg.Add(reads)
	start := time.Now()
	for s := 0; s < n; s++ {
		// Per-slot destination buffers per shard, enough that completions
		// never race a reissue of the same slot within the window.
		dsts := make([][]byte, shardWindow*4)
		for i := range dsts {
			dsts[i] = make([]byte, objSize)
		}
		go func(objs []int, dsts [][]byte) {
			for k, obj := range objs {
				ss.IssueRead(0, obj, dsts[k%len(dsts)], func(err error) {
					if err != nil {
						mu.Lock()
						if firstEr == nil {
							firstEr = err
						}
						mu.Unlock()
					}
					wg.Done()
				})
			}
		}(ops[s], dsts)
	}
	wg.Wait()
	d := time.Since(start)
	if firstEr != nil {
		return 0, fmt.Errorf("shard: %d backends: %w", n, firstEr)
	}
	return d, nil
}
