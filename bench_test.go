// Benchmarks regenerating the paper's evaluation artifacts. One
// benchmark per table/figure (BenchmarkTable1, BenchmarkFig4 …
// BenchmarkFig9) reruns the full experiment and reports its headline
// comparison as a custom metric, so `go test -bench=.` reproduces the
// whole evaluation. The BenchmarkGuard* group additionally measures the
// real wall-clock cost of the runtime primitives behind Table 1.
package cards

import (
	"fmt"
	"testing"

	"cards/internal/bench"
	"cards/internal/farmem"
	"cards/internal/netsim"
	"cards/internal/stats"
)

// ---- Real-time primitive costs (the substance behind Table 1). ----

func newBenchRuntime(trackFM bool) (*farmem.Runtime, uint64) {
	rt := farmem.New(farmem.Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: 1 << 22,
		TrackFMGuards:   trackFM,
	})
	rt.RegisterDS(0, farmem.DSMeta{Name: "bench", ObjSize: 4096})
	rt.SetPlacement(0, farmem.PlaceRemotable)
	addr, err := rt.DSAlloc(0, 1<<20)
	if err != nil {
		panic(err)
	}
	// Materialize the first object so hits stay hits.
	if _, err := rt.Guard(addr, true); err != nil {
		panic(err)
	}
	return rt, addr
}

func BenchmarkGuardLocalHitCaRDS(b *testing.B) {
	rt, addr := newBenchRuntime(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Guard(addr, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuardLocalHitTrackFM(b *testing.B) {
	rt, addr := newBenchRuntime(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Guard(addr, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuardFastPathPinned(b *testing.B) {
	rt := farmem.New(farmem.Config{PinnedBudget: 1 << 20, RemotableBudget: 1 << 20})
	rt.RegisterDS(0, farmem.DSMeta{Name: "pinned", ObjSize: 4096})
	rt.SetPlacement(0, farmem.PlacePinned)
	addr, err := rt.DSAlloc(0, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Guard(addr, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoteFaultRoundTrip(b *testing.B) {
	// Demand miss + eviction per iteration: the full fault path
	// including the in-process store round trip.
	obj := 4096
	rt := farmem.New(farmem.Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: uint64(16 * obj),
	})
	rt.RegisterDS(0, farmem.DSMeta{Name: "miss", ObjSize: obj})
	rt.SetPlacement(0, farmem.PlaceRemotable)
	nObjs := 256
	addr, err := rt.DSAlloc(0, int64(nObjs*obj))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nObjs; i++ {
		if _, err := rt.Guard(addr+uint64(i*obj), true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride far enough that every access misses.
		idx := (i * 37) % nObjs
		if _, err := rt.Guard(addr+uint64(idx*obj), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainerArraySet(b *testing.B) {
	rt, err := New(Config{PinnedMemory: 1 << 22, RemotableMemory: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewArray[int64](rt, "b", 1<<16, Remotable)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Set(i&(1<<16-1), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- One benchmark per paper artifact. ----

// runExperiment reruns one experiment per iteration and reports the
// virtual-time cost of a designated cell as a metric, so regressions in
// the reproduced comparisons show up in benchmark diffs.
func runExperiment(b *testing.B, id string, metric func(*bench.Table) (float64, string)) {
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.Quick()
	var last *bench.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.StopTimer()
	if last != nil && metric != nil {
		v, unit := metric(last)
		b.ReportMetric(v, unit)
	}
}

func cell(t *bench.Table, row, col int) float64 {
	var v float64
	fmt.Sscanf(t.Rows[row][col], "%f", &v)
	return v
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", func(t *bench.Table) (float64, string) {
		return cell(t, 0, 1), "cards-local-cycles"
	})
}

func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "fig4", func(t *bench.Table) (float64, string) {
		// max-use speedup over all-remotable (row order: policy.All()).
		return cell(t, 4, 2), "maxuse-speedup"
	})
}

func BenchmarkFig5(b *testing.B) {
	runExperiment(b, "fig5", func(t *bench.Table) (float64, string) {
		return cell(t, 1, 2), "linear-k50-vsec"
	})
}

func BenchmarkFig6(b *testing.B) {
	runExperiment(b, "fig6", func(t *bench.Table) (float64, string) {
		return cell(t, 4, 2), "maxuse-k50-vsec"
	})
}

func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "fig7", func(t *bench.Table) (float64, string) {
		return cell(t, 4, 2), "maxuse-k50-vsec"
	})
}

func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8", func(t *bench.Table) (float64, string) {
		return cell(t, 0, 4), "cards-vs-trackfm-25pct"
	})
}

func BenchmarkFig9(b *testing.B) {
	runExperiment(b, "fig9", func(t *bench.Table) (float64, string) {
		return cell(t, 2, 3), "list-speedup"
	})
}

func BenchmarkAblation(b *testing.B) {
	runExperiment(b, "ablation", func(t *bench.Table) (float64, string) {
		return cell(t, 3, 2), "no-versioning-slowdown"
	})
}

var _ = netsim.DefaultHz
var _ stats.Sample
