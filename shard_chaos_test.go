package cards

// Sharded far-tier end-to-end tests: compiled workloads running across a
// 3-backend fleet with every backend behind its own chaos proxy, and the
// per-shard fault-domain demo — one server of three killed mid-run, its
// breaker opening independently while the survivors keep serving, then a
// restart that drains the dirty write-backs stranded by the outage.

import (
	"errors"
	"runtime"
	"strconv"
	"testing"
	"time"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/faultnet"
	"cards/internal/ir"
	"cards/internal/obs"
	"cards/internal/policy"
	"cards/internal/remote"
	"cards/internal/replica"
	"cards/internal/shardmap"
	"cards/internal/workloads"
)

// TestChaosShardedWorkloads runs BFS (flat pools: striped placement) and
// the list pointer chase (recursive: pinned placement) over three
// backends, each reached through its own chaos proxy cutting
// connections and corrupting frames. The checksums must match the
// in-process runs exactly: per-shard transport retries absorb the
// faults, and placement routes every object back to the shard that owns
// it across all reconnects.
func TestChaosShardedWorkloads(t *testing.T) {
	const nShards = 3
	cases := map[string]struct {
		spec  string
		build func() (*ir.Module, error)
	}{
		"bfs": {
			spec: "cut=32768,corrupt=0.005",
			build: func() (*ir.Module, error) {
				return workloads.BuildBFS(workloads.BFSConfig{
					Vertices: 512, Degree: 6, Trials: 2, Seed: 11}).Module, nil
			},
		},
		"pointer_chase": {
			spec: "cut=16384,corrupt=0.005",
			build: func() (*ir.Module, error) {
				w, err := workloads.BuildChase("list", workloads.ChaseConfig{N: 4096, Seed: 9})
				if err != nil {
					return nil, err
				}
				return w.Module, nil
			},
		},
	}
	for name, tc := range cases {
		build := tc.build
		spec := tc.spec
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()

			run := func(store farmem.Store) uint64 {
				m, err := build()
				if err != nil {
					t.Fatal(err)
				}
				c, err := core.Compile(m, core.CompileOptions{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(core.RunConfig{
					Policy:          policy.AllRemotable,
					PinnedBudget:    0,
					RemotableBudget: 8 * 4096,
					Store:           store,
					RetryMax:        8, // reissue uncertain write-backs
				})
				if err != nil {
					t.Fatal(err)
				}
				return res.MainResult
			}
			want := run(nil) // in-process store: the reference checksum

			servers := make([]*remote.Server, nShards)
			proxies := make([]*faultnet.Proxy, nShards)
			backends := make([]farmem.Store, nShards)
			for i := 0; i < nShards; i++ {
				srv := remote.NewServer()
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				servers[i] = srv
				fcfg, err := faultnet.ParseSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				fcfg.Seed = int64(7 + i) // distinct schedule per backend
				proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, fcfg)
				if err != nil {
					t.Fatal(err)
				}
				proxies[i] = proxy
				backends[i] = dialChaosPipelined(t, proxy.Addr())
			}
			reg := obs.NewRegistry()
			ss, err := shardmap.NewSharded(backends, shardmap.Options{Obs: reg})
			if err != nil {
				t.Fatal(err)
			}

			got := run(ss)
			if got != want {
				t.Errorf("sharded chaos checksum %#x != in-process %#x", got, want)
			}

			// Every backend took real faults and the fleet carried real
			// traffic: the run exercised fan-out, not a single shard.
			snap := reg.Snapshot()
			activeShards, cuts := 0, int64(0)
			for i := 0; i < nShards; i++ {
				lbl := strconv.Itoa(i)
				if snap.Counters[obs.Key(shardmap.MetricShardReads, "shard", lbl)]+
					snap.Counters[obs.Key(shardmap.MetricShardWrites, "shard", lbl)] > 0 {
					activeShards++
				}
				cuts += proxies[i].Cuts()
			}
			if name == "bfs" && activeShards < 2 {
				t.Errorf("striped workload used %d shards, want >= 2", activeShards)
			}
			if cuts == 0 {
				t.Error("chaos proxies forced no disconnects: schedule too gentle")
			}
			t.Logf("%s: checksum %#x across %d active shards, %d forced disconnects",
				name, got, activeShards, cuts)

			ss.Close() // closes the pipelined clients (io.Closer backends)
			for i := 0; i < nShards; i++ {
				proxies[i].Close()
				servers[i].Close()
			}
			checkGoroutines(t, before)
		})
	}
}

// TestShardedServerOutageAndRecovery is the per-shard fault-domain demo
// on the public API: three cardsd backends via Config.RemoteAddrs, one
// killed mid-run. Only the dead shard's breaker may open — reads of
// objects it owns fail fast with ErrDegraded while every object on the
// surviving shards keeps serving exactly, and the global runtime breaker
// must stay closed (the outage is contained). Dirty writes made while
// degraded pin locally; restarting the server (same store) recovers the
// shard and drains them.
func TestShardedServerOutageAndRecovery(t *testing.T) {
	before := runtime.NumGoroutine()

	const nShards = 3
	srvs := make([]*remote.Server, nShards)
	addrs := make([]string, nShards)
	for i := range srvs {
		srvs[i] = remote.NewServer()
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}

	rt, err := New(Config{
		PinnedMemory:    1 << 20,
		RemotableMemory: 2 * 4096, // 2-object cache over a 32-object array
		RemoteAddrs:     addrs,
		RemoteTimeout:   250 * time.Millisecond,
		RemoteRetries:   1,
		// Arms both the per-shard breakers and the global one. The shard
		// counts every transport call (an op plus its runtime retry), so it
		// opens first and converts the outage to contained ErrDegraded
		// before the global counter can reach the same threshold.
		BreakerThreshold: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		objs        = 32
		elemsPerObj = 512 // 512 int64s = one 4 KiB object
		n           = objs * elemsPerObj
	)
	arr, err := NewArray[int64](rt, "demo", n, Remotable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := arr.Set(i, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}

	// The array stripes (flat pool), so the fleet shares its objects.
	// Partition the objects by owner around the victim shard: the owner
	// of object 0.
	ss := rt.policies.(*shardmap.ShardedStore)
	victimShard := ss.ShardOf(0, 0)
	var victim, healthy []int
	for o := 0; o < objs; o++ {
		if ss.ShardOf(0, o) == victimShard {
			victim = append(victim, o)
		} else {
			healthy = append(healthy, o)
		}
	}
	if len(victim) < 2 || len(healthy) < 2 {
		t.Fatalf("degenerate placement: %d victim objects, %d healthy", len(victim), len(healthy))
	}
	probeObj, dirtyObj := victim[0], victim[1]

	// Flush the tail of the fill (dirty residents) to the still-healthy
	// fleet, then make dirtyObj resident and clean so it can take a write
	// during the outage.
	if _, err := arr.Get(healthy[0] * elemsPerObj); err != nil {
		t.Fatal(err)
	}
	if _, err := arr.Get(healthy[1] * elemsPerObj); err != nil {
		t.Fatal(err)
	}
	if _, err := arr.Get(dirtyObj * elemsPerObj); err != nil {
		t.Fatal(err)
	}
	for i, srv := range srvs {
		if srv.Store.Len() == 0 {
			t.Fatalf("shard %d received no write-backs before the outage", i)
		}
	}

	// Kill one backend of three.
	srvs[victimShard].Drain(20 * time.Millisecond)

	// A write to the victim's resident object succeeds in local memory and
	// goes dirty — stranded until the shard comes back.
	dirtyElem := dirtyObj*elemsPerObj + 3
	if err := arr.Set(dirtyElem, 4242); err != nil {
		t.Fatalf("resident write during outage: %v", err)
	}

	// Remote derefs of victim-owned objects fail; once the shard breaker
	// opens they fail fast with ErrDegraded.
	var derr error
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, derr = arr.Get(probeObj * elemsPerObj); errors.Is(derr, farmem.ErrDegraded) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim-shard deref never degraded: %v", derr)
		}
	}

	// The fault domain is the shard: only the victim's breaker is open,
	// and the global runtime breaker never tripped.
	for i := 0; i < nShards; i++ {
		want := farmem.BreakerClosed
		if i == victimShard {
			want = farmem.BreakerOpen
		}
		if got := ss.ShardState(i); got != want {
			t.Errorf("shard %d breaker = %v, want %v", i, got, want)
		}
	}
	if trips := rt.rt.Stats().BreakerTrips; trips != 0 {
		t.Errorf("global breaker tripped %d times during a one-shard outage", trips)
	}

	// Every object on the surviving shards keeps serving, byte-exact.
	for _, o := range healthy {
		e := o * elemsPerObj
		v, err := arr.Get(e)
		if err != nil {
			t.Fatalf("survivor object %d during outage: %v", o, err)
		}
		if v != int64(1000+e) {
			t.Fatalf("survivor object %d element = %d, want %d", o, v, 1000+e)
		}
	}

	// Restart the dead backend on the same address with the same object
	// store. The shard prober notices, the next victim-shard deref closes
	// the circuit, and the runtime drains the stranded dirty write-back.
	srv2 := remote.NewServer()
	srv2.Store = srvs[victimShard].Store
	if _, err := srv2.Listen(addrs[victimShard]); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, err = arr.Get(probeObj * elemsPerObj); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after shard restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := ss.ShardState(victimShard); got != farmem.BreakerClosed {
		t.Errorf("victim shard breaker = %v after recovery, want closed", got)
	}
	if drained := rt.rt.Stats().DrainedWriteBacks; drained == 0 {
		t.Error("DrainedWriteBacks = 0: the stranded dirty object was not flushed on recovery")
	}

	// Per-shard counters tell the same story on the obs registry.
	snap := ss.Obs().Snapshot()
	lbl := strconv.Itoa(victimShard)
	if got := snap.Counters[obs.Key(shardmap.MetricShardTrips, "shard", lbl)]; got == 0 {
		t.Error("victim shard recorded no breaker trips")
	}
	if got := snap.Counters[obs.Key(shardmap.MetricShardRecoveries, "shard", lbl)]; got == 0 {
		t.Error("victim shard recorded no breaker recoveries")
	}

	// Full scan: the entire working set survived the outage, including
	// the write made while the shard was down.
	for i := 0; i < n; i++ {
		want := int64(1000 + i)
		if i == dirtyElem {
			want = 4242
		}
		v, err := arr.Get(i)
		if err != nil {
			t.Fatalf("post-recovery Get(%d): %v", i, err)
		}
		if v != want {
			t.Fatalf("post-recovery element %d = %d, want %d", i, v, want)
		}
	}

	rt.Close()
	srv2.Close()
	for i, srv := range srvs {
		if i != victimShard {
			srv.Close()
		}
	}
	checkGoroutines(t, before)
}

// TestReplicaKillRestartSequenceUnderCorruption drives the replicated
// far tier through a staged double failure while every connection
// corrupts 1% of its frames: kill the primary of object 0's group,
// prove failover keeps serving and writes still meet quorum on the
// backup; then kill the backup too, prove writes to the dead group park
// as a contained degraded condition; then restart both and prove the
// parked write-back drains, anti-entropy reconverges the epochs, and
// every value — including those written between the kills — survives
// byte-exact.
func TestReplicaKillRestartSequenceUnderCorruption(t *testing.T) {
	before := runtime.NumGoroutine()

	const (
		nBackends = 3
		objs      = 32
		objSize   = 4096
	)
	srvs := make([]*remote.Server, nBackends)
	addrs := make([]string, nBackends)
	proxies := make([]*faultnet.Proxy, nBackends)
	backends := make([]farmem.Store, nBackends)
	dial := func(i int) *remote.Resilient {
		// Under corruption the feature handshake itself can garble and
		// land the fallback serial client; the epoch path retires such a
		// client and renegotiates, but start from a clean session.
		for try := 0; try < 50; try++ {
			c, err := remote.DialResilient(proxies[i].Addr(), remote.DialConfig{
				Timeout:   300 * time.Millisecond,
				RetryMax:  8,
				RetryBase: time.Millisecond,
				RetryCap:  20 * time.Millisecond,
				Window:    8,
				MaxBatch:  2,
			})
			if err != nil {
				continue
			}
			if c.EpochCapable() {
				return c
			}
			c.Close()
		}
		t.Fatalf("backend %d: no epoch-capable session through the corrupting proxy", i)
		return nil
	}
	for i := range srvs {
		srvs[i] = remote.NewServer()
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		fcfg, err := faultnet.ParseSpec("corrupt=0.01")
		if err != nil {
			t.Fatal(err)
		}
		fcfg.Seed = int64(31 + i)
		proxies[i], err = faultnet.NewProxy("127.0.0.1:0", addr, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = dial(i)
	}
	rs, err := replica.New(backends, replica.Options{
		Replicas:         2,
		BreakerThreshold: 3,
		ProbeEvery:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := farmem.New(farmem.Config{
		PinnedBudget:    1 << 20,
		RemotableBudget: 4 * objSize,
		WriteBackBudget: 8 * objSize,
		Store:           rs,
		RetryMax:        8,
	})
	if _, err := r.RegisterDS(0, farmem.DSMeta{Name: "seq", ObjSize: objSize, ElemSize: 8}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetPlacement(0, farmem.PlaceRemotable); err != nil {
		t.Fatal(err)
	}
	base, err := r.DSAlloc(0, objs*objSize)
	if err != nil {
		t.Fatal(err)
	}
	writeW := func(idx int, v uint64) error {
		p, err := r.Guard(base+uint64(idx)*objSize, true)
		if err != nil {
			return err
		}
		return r.WriteWord(p, v)
	}
	readW := func(idx int) (uint64, error) {
		p, err := r.Guard(base+uint64(idx)*objSize, false)
		if err != nil {
			return 0, err
		}
		return r.ReadWord(p)
	}
	// Under corruption a member's breaker can trip transiently (one
	// connection cut fails a whole pipeline window at once), so a read
	// can surface ErrDegraded for a probe interval even though a live
	// in-sync replica exists. That is the documented contract — degraded
	// is retryable-later — so the test retries exactly the way a real
	// caller would.
	readRetry := func(idx int) uint64 {
		deadline := time.Now().Add(10 * time.Second)
		for {
			v, err := readW(idx)
			if err == nil {
				return v
			}
			if !errors.Is(err, farmem.ErrDegraded) || time.Now().After(deadline) {
				t.Fatalf("read %d: %v", idx, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	drainRetry := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := r.DrainWriteBacks()
			if err == nil && r.StagedWriteBackEntries() == 0 {
				return
			}
			if err != nil && !errors.Is(err, farmem.ErrDegraded) {
				t.Fatalf("drain: %v", err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("drain never converged: err=%v staged=%d", err, r.StagedWriteBackEntries())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	want := make([]uint64, objs)
	for i := 0; i < objs; i++ {
		want[i] = uint64(1000 + i)
		if err := writeW(i, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.DrainWriteBacks(); err != nil {
		t.Fatal(err)
	}

	// Corruption can leave a fill sub-write uncertain on one member (the
	// write still acks at W=1 on the other), so wait for anti-entropy to
	// reconverge the fleet before staging the kills — otherwise the only
	// current copy of an object may sit on the member about to die, and
	// refusing to serve the stale survivor would be correct but would
	// not be the scenario this test stages.
	if !waitUntil(t, 30*time.Second, func() bool {
		for i := 0; i < nBackends; i++ {
			if !rs.MemberInSync(i) || rs.MemberState(i) != farmem.BreakerClosed {
				return false
			}
		}
		return true
	}) {
		t.Fatal("fleet never fully in sync after the fill")
	}

	var gbuf [replica.MaxReplicas]int
	group := rs.GroupOf(0, 0, gbuf[:0])
	primary, backup := group[0], group[1]

	// Stage 1: kill the primary. Every object keeps reading exactly
	// (objects it led fail over to their backup), and a write to the
	// half-dead group still meets W=1 on the backup.
	srvs[primary].Drain(20 * time.Millisecond)
	for i := 0; i < objs; i++ {
		if v := readRetry(i); v != want[i] {
			t.Fatalf("read %d = %d with primary dead, want %d", i, v, want[i])
		}
	}
	want[0] = 2000
	if err := writeW(0, want[0]); err != nil {
		t.Fatalf("write during primary outage: %v", err)
	}
	drainRetry()

	// Stage 2: kill the backup too — object 0's whole group is dead.
	// The resident copy still takes the write. Evicting it (by touching
	// objects the third, still-alive backend serves) forces the
	// write-back at the dead group: the failed sub-writes drive the
	// backup's breaker open and the entry parks as a contained degraded
	// condition instead of erroring the program.
	srvs[backup].Drain(20 * time.Millisecond)
	want[0] = 3000
	if err := writeW(0, want[0]); err != nil {
		t.Fatalf("resident write with whole group dead: %v", err)
	}
	third := 3 - primary - backup
	var evictors []int
	for i := 1; i < objs && len(evictors) < 8; i++ {
		g := rs.GroupOf(0, i, gbuf[:0])
		if g[0] == third || g[1] == third {
			evictors = append(evictors, i)
		}
	}
	stranded := false
	deadline := time.Now().Add(10 * time.Second)
	for !stranded {
		if time.Now().After(deadline) {
			t.Fatalf("object 0 never stranded: backup state=%v staged=%d",
				rs.MemberState(backup), r.StagedWriteBackEntries())
		}
		for _, i := range evictors {
			if v := readRetry(i); v != want[i] {
				t.Fatalf("read %d = %d during double outage, want %d", i, v, want[i])
			}
		}
		if err := r.DrainWriteBacks(); err != nil && !errors.Is(err, farmem.ErrDegraded) {
			t.Fatalf("drain with whole group dead: %v", err)
		}
		stranded = rs.Stranded(0, 0) && r.StagedWriteBackEntries() > 0
		time.Sleep(5 * time.Millisecond)
	}

	// Stage 3: restart both servers (same stores, same addresses). The
	// members resync and rejoin, the parked write-back drains, and the
	// full data set — including both outage writes — reads back exact.
	restarted := make([]*remote.Server, 0, 2)
	for _, i := range []int{primary, backup} {
		srv2 := remote.NewServer()
		srv2.Store = srvs[i].Store
		if _, err := srv2.Listen(addrs[i]); err != nil {
			t.Fatal(err)
		}
		restarted = append(restarted, srv2)
	}
	if !waitUntil(t, 30*time.Second, func() bool {
		return rs.MemberState(primary) == farmem.BreakerClosed &&
			rs.MemberState(backup) == farmem.BreakerClosed
	}) {
		t.Fatalf("breakers never closed after restart: primary=%v backup=%v",
			rs.MemberState(primary), rs.MemberState(backup))
	}
	// The parked write-back drains once the recovery epoch advanced;
	// only then can the sweeps finish without skips (the authority epoch
	// for object 0 exists nowhere until the drain re-fans it).
	drainRetry()
	if !waitUntil(t, 30*time.Second, func() bool {
		for i := 0; i < nBackends; i++ {
			if !rs.MemberInSync(i) {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("members never rejoined: insync primary=%v backup=%v third=%v",
			rs.MemberInSync(primary), rs.MemberInSync(backup), rs.MemberInSync(third))
	}
	for i := 0; i < objs; i++ {
		if v := readRetry(i); v != want[i] {
			t.Fatalf("post-recovery read %d = %d, want %d", i, v, want[i])
		}
	}

	// Epoch agreement across every object's group: the restarted members
	// converged to the surviving member's epochs.
	stores := make([]*remote.ObjectStore, nBackends)
	for i := range stores {
		stores[i] = srvs[i].Store
	}
	for i := 0; i < objs; i++ {
		g := rs.GroupOf(0, i, gbuf[:0])
		e0 := stores[g[0]].Epoch(0, uint32(i))
		e1 := stores[g[1]].Epoch(0, uint32(i))
		if e0 != e1 || e0 == 0 {
			t.Errorf("object %d: group [%d %d] epochs %d vs %d after recovery (primary=%d backup=%d)",
				i, g[0], g[1], e0, e1, primary, backup)
		}
	}

	r.Close()
	rs.Close()
	for _, srv := range restarted {
		srv.Close()
	}
	for i, srv := range srvs {
		if i != primary && i != backup {
			srv.Close()
		}
	}
	for _, p := range proxies {
		p.Close()
	}
	checkGoroutines(t, before)
}
