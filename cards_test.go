package cards

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"cards/internal/remote"
)

func newRuntime(t *testing.T) *Runtime {
	t.Helper()
	r, err := New(Config{PinnedMemory: 1 << 20, RemotableMemory: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestArrayBasics(t *testing.T) {
	r := newRuntime(t)
	a, err := NewArray[int64](r, "a", 100, Remotable)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 100 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i := 0; i < 100; i++ {
		if err := a.Set(i, int64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		v, err := a.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i*i) {
			t.Fatalf("a[%d] = %d, want %d", i, v, i*i)
		}
	}
	if a.Local() {
		t.Error("remotable array should not report local")
	}
	if a.Stats().Hits == 0 {
		t.Error("no hits recorded")
	}
}

func TestArrayFloat(t *testing.T) {
	r := newRuntime(t)
	a, err := NewArray[float64](r, "f", 10, Pinned)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Set(3, 2.75); err != nil {
		t.Fatal(err)
	}
	v, err := a.Get(3)
	if err != nil || v != 2.75 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if !a.Local() {
		t.Error("pinned array should be local")
	}
}

func TestArrayBounds(t *testing.T) {
	r := newRuntime(t)
	a, _ := NewArray[int64](r, "b", 4, Linear)
	if _, err := a.Get(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := a.Get(4); err == nil {
		t.Error("out-of-range index should fail")
	}
	if err := a.Set(99, 1); err == nil {
		t.Error("out-of-range set should fail")
	}
	if _, err := NewArray[int64](r, "z", 0, Linear); err == nil {
		t.Error("zero-length array should fail")
	}
}

func TestListOrderAndEarlyStop(t *testing.T) {
	r := newRuntime(t)
	l, err := NewList[int64](r, "l", Remotable)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := l.PushBack(i * 3); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 200 {
		t.Fatalf("Len = %d", l.Len())
	}
	var got []int64
	if err := l.Each(func(v int64) bool {
		got = append(got, v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int64(i*3) {
			t.Fatalf("element %d = %d, want %d", i, v, i*3)
		}
	}
	count := 0
	l.Each(func(v int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop walked %d", count)
	}
}

func TestMapPutGetOverwrite(t *testing.T) {
	r := newRuntime(t)
	m, err := NewMap[int64](r, "m", 128, Remotable)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 300; k++ {
		if err := m.Put(k, k*7); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 300 {
		t.Fatalf("Len = %d", m.Len())
	}
	for k := int64(0); k < 300; k++ {
		v, ok, err := m.Get(k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("Get(%d) = %d, %v, %v", k, v, ok, err)
		}
	}
	if _, ok, _ := m.Get(9999); ok {
		t.Error("absent key found")
	}
	// Overwrite must not grow the map.
	if err := m.Put(5, 500); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 300 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
	v, ok, _ := m.Get(5)
	if !ok || v != 500 {
		t.Fatalf("overwritten value = %d", v)
	}
	if m.NodeStats().Hits == 0 || m.BucketStats().Hits == 0 {
		t.Error("stats not recorded")
	}
}

func TestRuntimeStats(t *testing.T) {
	r := newRuntime(t)
	a, _ := NewArray[int64](r, "s", 4096, Remotable)
	for i := 0; i < 4096; i++ {
		a.Set(i, 1)
	}
	st := r.Stats()
	if st.GuardChecks == 0 {
		t.Error("no guard checks")
	}
	if st.VirtualSeconds <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestEvictionPressureKeepsData(t *testing.T) {
	// A tiny cache forces eviction; data must survive round trips.
	r, err := New(Config{PinnedMemory: 0, RemotableMemory: 16 * 4096})
	if err != nil {
		t.Fatal(err)
	}
	n := 32 * 512 // 32 objects of data
	a, err := NewArray[int64](r, "big", n, Remotable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := a.Set(i, int64(i)^0x5a5a); err != nil {
			t.Fatal(err)
		}
	}
	for i := n - 1; i >= 0; i-- {
		v, err := a.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i)^0x5a5a {
			t.Fatalf("a[%d] = %d corrupted", i, v)
		}
	}
	if r.Stats().Evictions == 0 {
		t.Error("expected eviction pressure")
	}
}

func TestRemoteTCPBackend(t *testing.T) {
	srv := remote.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r, err := New(Config{RemotableMemory: 8 * 4096, RemoteAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	n := 16 * 512
	a, err := NewArray[int64](r, "net", n, Remotable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a.Set(i, int64(i+1))
	}
	for i := 0; i < n; i++ {
		v, err := a.Get(i)
		if err != nil || v != int64(i+1) {
			t.Fatalf("a[%d] = %d, %v", i, v, err)
		}
	}
	if srv.Store.Len() == 0 {
		t.Error("server never saw evicted objects")
	}
}

func TestBadRemoteAddr(t *testing.T) {
	if _, err := New(Config{RemoteAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable far tier should fail fast")
	}
}

// Property: a map behaves exactly like Go's built-in map under random
// operation sequences.
func TestMapModelProperty(t *testing.T) {
	f := func(keys []int64, vals []int64) bool {
		r, err := New(Config{PinnedMemory: 1 << 20, RemotableMemory: 1 << 18})
		if err != nil {
			return false
		}
		m, err := NewMap[int64](r, "p", 64, Remotable)
		if err != nil {
			return false
		}
		model := make(map[int64]int64)
		for i, k := range keys {
			v := int64(i)
			if i < len(vals) {
				v = vals[i]
			}
			k &= 127 // force collisions
			if m.Put(k, v) != nil {
				return false
			}
			model[k] = v
		}
		for k, want := range model {
			got, ok, err := m.Get(k)
			if err != nil || !ok || got != want {
				return false
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: array writes then reads round-trip arbitrary bit patterns.
func TestArrayRoundTripProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 512 {
			vals = vals[:512]
		}
		r, err := New(Config{RemotableMemory: 8 * 4096})
		if err != nil {
			return false
		}
		a, err := NewArray[uint64](r, "rt", len(vals), Remotable)
		if err != nil {
			return false
		}
		for i, v := range vals {
			if a.Set(i, v) != nil {
				return false
			}
		}
		for i, v := range vals {
			got, err := a.Get(i)
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayBulkOps(t *testing.T) {
	r := newRuntime(t)
	a, err := NewArray[int64](r, "bulk", 500, Remotable)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Fill(func(i int) int64 { return int64(i) * 2 }); err != nil {
		t.Fatal(err)
	}
	sum, err := Reduce(a, int64(0), func(acc, v int64) int64 { return acc + v })
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(499 * 500); sum != want {
		t.Fatalf("Reduce = %d, want %d", sum, want)
	}
	// Early stop.
	visits := 0
	a.Scan(func(i int, v int64) bool {
		visits++
		return i < 9
	})
	if visits != 10 {
		t.Fatalf("Scan early stop visited %d", visits)
	}
}

func TestRuntimeTrace(t *testing.T) {
	var buf bytes.Buffer
	r, err := New(Config{RemotableMemory: 8 * 4096})
	if err != nil {
		t.Fatal(err)
	}
	r.Trace(&buf)
	a, _ := NewArray[int64](r, "traced", 16*512, Remotable)
	a.Fill(func(i int) int64 { return int64(i) })
	r.Trace(nil)
	if !strings.Contains(buf.String(), "evict") {
		t.Fatalf("trace missing evictions:\n%.300s", buf.String())
	}
}
