package cards

// End-to-end fault-tolerance tests: compiled workloads running over a
// real TCP far tier through the chaos proxy (forced disconnects + frame
// corruption), and the circuit-breaker demo — a server killed mid-run,
// degraded service from resident memory, then recovery with a drain of
// the dirty write-backs after the server restarts.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/faultnet"
	"cards/internal/ir"
	"cards/internal/policy"
	"cards/internal/remote"
	"cards/internal/testutil"
	"cards/internal/workloads"
)

// checkGoroutines delegates to the shared leak checker (also applied in
// the remote and faultnet suites).
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	testutil.CheckGoroutines(t, before)
}

// dialChaosPipelined dials through the fault proxy until the negotiation
// yields the pipelined client. Under frame corruption the feature
// handshake itself can be garbled, in which case DialAutoOpts falls back
// to the serial protocol — which has no CRC and must not carry payloads
// across a corrupting link — so a serial fallback is closed and redialed.
func dialChaosPipelined(t *testing.T, addr string) *remote.PipelinedClient {
	t.Helper()
	cfg := remote.DialConfig{
		// A short stall timeout keeps corrupted-length frames (server
		// blocked mid-frame, stream wedged) cheap: each one costs one
		// Timeout before the stall detector cuts and replays.
		Timeout:   300 * time.Millisecond,
		RetryMax:  64,
		RetryBase: time.Millisecond,
		RetryCap:  20 * time.Millisecond,
		// Small batches: a coalesced READBATCH response (up to
		// Window*4 KiB in one frame) could exceed every possible cut
		// budget and replay forever; two objects per frame (~8 KiB)
		// always fit the minimum cut draw (cut/2 = 16 KiB).
		Window:   8,
		MaxBatch: 2,
	}
	for i := 0; i < 50; i++ {
		c, err := remote.DialAutoOpts(addr, cfg)
		if err != nil {
			continue
		}
		if pc, ok := c.(*remote.PipelinedClient); ok {
			return pc
		}
		c.Close()
	}
	t.Fatal("could not negotiate a pipelined connection through the chaos proxy")
	return nil
}

// TestChaosWorkloadsRunToCompletion is the headline robustness test: the
// compiled BFS and pointer-chase workloads run against a TCP far tier
// reached through the chaos proxy — a connection cut every 16 KiB and 1%
// of forwarded chunks corrupted — and must produce exactly the checksum
// of the in-process run. The transport replays reads across reconnects;
// corrupted frames are caught by the CRC trailer; uncertain writes
// surface to the runtime, whose reissue is safe because full-object
// write-backs are idempotent.
func TestChaosWorkloadsRunToCompletion(t *testing.T) {
	// Each workload carries the cut schedule matched to its traffic
	// volume (BFS pushes ~40x the bytes of the chase), so both rack up
	// well over 50 disconnects without taking minutes.
	cases := map[string]struct {
		spec  string
		build func() (*ir.Module, error)
	}{
		"bfs": {
			spec: "cut=32768,corrupt=0.01,seed=7",
			build: func() (*ir.Module, error) {
				return workloads.BuildBFS(workloads.BFSConfig{
					Vertices: 512, Degree: 6, Trials: 2, Seed: 11}).Module, nil
			},
		},
		"pointer_chase": {
			spec: "cut=8192,corrupt=0.01,seed=7",
			build: func() (*ir.Module, error) {
				w, err := workloads.BuildChase("list", workloads.ChaseConfig{N: 4096, Seed: 9})
				if err != nil {
					return nil, err
				}
				return w.Module, nil
			},
		},
	}
	for name, tc := range cases {
		build := tc.build
		spec := tc.spec
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()

			run := func(store farmem.Store) *core.RunResult {
				m, err := build()
				if err != nil {
					t.Fatal(err)
				}
				c, err := core.Compile(m, core.CompileOptions{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(core.RunConfig{
					Policy:          policy.AllRemotable,
					PinnedBudget:    0,
					RemotableBudget: 8 * 4096, // tiny cache: heavy wire traffic
					Store:           store,
					RetryMax:        8, // reissue uncertain write-backs
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(nil).MainResult // in-process store: the reference checksum

			srv := remote.NewServer()
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fcfg, err := faultnet.ParseSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, fcfg)
			if err != nil {
				t.Fatal(err)
			}
			cl := dialChaosPipelined(t, proxy.Addr())

			res := run(cl)
			if res.MainResult != want {
				t.Errorf("chaos checksum %#x != in-process %#x", res.MainResult, want)
			}
			// The pipelined client is an AsyncWriteStore, so the checksums
			// above were produced with dirty evictions staged off the deref
			// path — the async write-back pipeline is what survived the
			// schedule, not the legacy sync path.
			if res.Runtime.StagedWriteBacks == 0 {
				t.Error("StagedWriteBacks = 0: async write-back path never engaged under chaos")
			}
			cuts, corrupts, conns := proxy.Cuts(), proxy.Corruptions(), proxy.Conns()
			if cuts < 50 {
				t.Errorf("proxy forced %d disconnects, want >= 50 (schedule too gentle for the traffic)", cuts)
			}
			t.Logf("%s survived %d disconnects, %d corrupted chunks across %d connections",
				name, cuts, corrupts, conns)

			cl.Close()
			proxy.Close()
			srv.Close()
			checkGoroutines(t, before)
		})
	}
}

// TestBreakerServerOutageAndRecovery is the degradation demo on the
// public API: kill the far-tier server mid-run, watch the circuit
// breaker trip so resident objects keep serving while remote derefs fail
// fast with ErrDegraded, then restart the server (same store — the far
// tier's contents survive a cardsd restart in spirit) and watch the
// breaker recover, draining the dirty write-backs that accumulated while
// degraded — all visible as obs counters in the /stats snapshot.
func TestBreakerServerOutageAndRecovery(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := remote.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	rt, err := New(Config{
		PinnedMemory:     1 << 20,
		RemotableMemory:  2 * 4096, // 2-object cache over an 8-object array
		RemoteAddr:       addr,
		RemoteTimeout:    250 * time.Millisecond,
		RemoteRetries:    1,
		BreakerThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8 * 512 // 8 objects of 512 int64s
	arr, err := NewArray[int64](rt, "demo", n, Remotable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := arr.Set(i, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Store.Len() == 0 {
		t.Fatal("no write-backs reached the server before the outage")
	}

	// Kill the server mid-run: listener closed, connections force-cut.
	srv.Drain(20 * time.Millisecond)

	// Remote derefs fail; after BreakerThreshold consecutive failures the
	// breaker opens and they fail fast with ErrDegraded.
	var derr error
	for i := 0; i < 20; i++ {
		if _, derr = arr.Get(0); errors.Is(derr, farmem.ErrDegraded) {
			break
		}
	}
	if !errors.Is(derr, farmem.ErrDegraded) {
		t.Fatalf("remote deref during outage = %v, want ErrDegraded", derr)
	}

	// Resident objects keep serving from local memory while degraded.
	if v, err := arr.Get(n - 1); err != nil || v != int64(1000+n-1) {
		t.Fatalf("resident element during outage = %d, %v", v, err)
	}
	if err := arr.Set(n-1, int64(2000)); err != nil {
		t.Fatalf("resident write during outage: %v", err)
	}

	// Restart the far tier on the same address, same object store. The
	// breaker's background prober notices, arms half-open, and the next
	// deref is the trial that closes the circuit and drains dirty objects.
	srv2 := remote.NewServer()
	srv2.Store = srv.Store
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	var v int64
	for {
		v, err = arr.Get(0)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after server restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v != 1000 {
		t.Fatalf("recovered element 0 = %d, want 1000", v)
	}

	st := rt.rt.Stats()
	if st.BreakerTrips == 0 {
		t.Error("BreakerTrips = 0 after outage")
	}
	if st.BreakerRecoveries == 0 {
		t.Error("BreakerRecoveries = 0 after restart")
	}
	if st.DrainedWriteBacks == 0 {
		t.Error("DrainedWriteBacks = 0: dirty residents were not flushed on recovery")
	}

	// The whole working set survived the outage, including the write made
	// while degraded.
	for i := 0; i < n-1; i++ {
		v, err := arr.Get(i)
		if err != nil {
			t.Fatalf("post-recovery Get(%d): %v", i, err)
		}
		if v != int64(1000+i) {
			t.Fatalf("post-recovery element %d = %d, want %d", i, v, 1000+i)
		}
	}
	if v, _ := arr.Get(n - 1); v != 2000 {
		t.Fatalf("degraded-mode write lost: element %d = %d, want 2000", n-1, v)
	}

	// The breaker counters are on the /stats snapshot cardsd serves.
	var buf bytes.Buffer
	if err := rt.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"cards_farmem_breaker_state",
		"cards_farmem_breaker_trips_total",
		"cards_farmem_breaker_recoveries_total",
		"cards_farmem_drained_writebacks_total",
	} {
		if !strings.Contains(buf.String(), metric) {
			t.Errorf("metrics snapshot missing %s", metric)
		}
	}

	rt.Close()
	srv2.Close()
	checkGoroutines(t, before)
}

// TestChaosMidFlushDisconnectReplaysStagedWrites cuts the connection
// while WRITEBATCH flushes are on the wire: staged write-backs complete
// with ErrUncertainWrite and the runtime must reissue them from the
// staging snapshots (never the transport — it cannot know whether the
// server applied the batch). Every element reads back exactly through
// the runtime (read-your-writes + replay), and after the drain the far
// tier holds only whole-object images — a torn or double-applied batch
// would leave an object mixing values from different passes.
func TestChaosMidFlushDisconnectReplaysStagedWrites(t *testing.T) {
	before := runtime.NumGoroutine()
	const (
		objSize = 4096
		perObj  = objSize / 8
		nObjs   = 64
		n       = nObjs * perObj
		pass1   = 7000
		pass2   = 9000
	)

	srv := remote.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Writes dominate this workload's traffic (cyclic dirty walk over a
	// working set 8x the cache), so a cut every ~24 KiB lands squarely on
	// in-flight WRITEBATCH frames.
	fcfg, err := faultnet.ParseSpec("cut=24576,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.NewProxy("127.0.0.1:0", addr, fcfg)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := New(Config{
		PinnedMemory:    1 << 20,
		RemotableMemory: 8 * objSize, // 8-object cache over a 64-object array
		WriteBackMemory: nObjs * objSize,
		RemoteAddr:      proxy.Addr(),
		RemoteTimeout:   300 * time.Millisecond,
		RemoteRetries:   64,
		// No breaker: transient cuts must be survived by retry/replay
		// alone, keeping the test about the write-back pipeline.
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	arr, err := NewArray[int64](rt, "wb", n, Remotable)
	if err != nil {
		t.Fatal(err)
	}
	for pass, base := range []int64{pass1, pass2} {
		for i := 0; i < n; i++ {
			if err := arr.Set(i, base+int64(i%perObj)); err != nil {
				t.Fatalf("pass %d Set(%d): %v", pass, i, err)
			}
		}
	}

	// Read-your-writes across the replays: every element must come back
	// with its pass-2 value, whether it is resident, staged for
	// write-back, or already durable on the far tier.
	for i := 0; i < n; i++ {
		v, err := arr.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if want := pass2 + int64(i%perObj); v != want {
			t.Fatalf("element %d = %d, want %d", i, v, want)
		}
	}

	st := rt.rt.Stats()
	if st.StagedWriteBacks == 0 {
		t.Fatal("StagedWriteBacks = 0: evictions never took the async path")
	}
	if st.WriteBackReissues == 0 {
		t.Fatal("WriteBackReissues = 0: no staged write was replayed — the cut schedule never caught a flush in flight")
	}
	if proxy.Cuts() < 5 {
		t.Errorf("proxy forced %d disconnects, want >= 5", proxy.Cuts())
	}

	if err := rt.Close(); err != nil { // drains the staged write-backs
		t.Fatalf("drain on close: %v", err)
	}

	// Far-tier images must be whole-object: every stored object is a
	// complete pass-1 or pass-2 snapshot (an object evicted again after
	// its pass-2 rewrite carries pass-2 throughout), never a mix.
	stored := 0
	for o := 0; o < nObjs; o++ {
		buf := srv.Store.Read(0, uint32(o), objSize)
		if bytes.Equal(buf, make([]byte, objSize)) {
			continue // never evicted: only ever lived in local memory
		}
		stored++
		base := int64(binary.LittleEndian.Uint64(buf)) // word 0 fixes the pass
		if base != pass1 && base != pass2 {
			t.Fatalf("object %d word 0 = %d, want %d or %d", o, base, pass1, pass2)
		}
		for w := 1; w < perObj; w++ {
			got := int64(binary.LittleEndian.Uint64(buf[w*8:]))
			if got != base+int64(w) {
				t.Fatalf("object %d torn: word %d = %d, want %d (pass base %d)",
					o, w, got, base+int64(w), base)
			}
		}
	}
	if stored == 0 {
		t.Fatal("no objects reached the far tier")
	}
	t.Logf("replayed %d uncertain write-backs across %d cuts; %d/%d objects durable and whole",
		st.WriteBackReissues, proxy.Cuts(), stored, nObjs)

	proxy.Close()
	srv.Close()
	checkGoroutines(t, before)
}
