GO ?= go

.PHONY: build test check fmt vet race chaos bench bench-smoke bench-shard bench-writeback bench-replica bench-chase bench-wire benchguard difftest fuzz-smoke trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, the full test
# suite under the race detector (exercises the concurrent remote server
# and the obs tracer/registry), the differential-testing suite (oracle
# vs per-hop vs offloaded traversal, byte-exact under seeded chaos), a
# short fuzzing smoke pass over the wire-format decoders, the
# distributed-tracing smoke, and the sweep regression guards against
# the checked-in baselines.
check: fmt vet race difftest fuzz-smoke trace-smoke benchguard

# difftest runs the differential harness verbosely: every traversal
# workload three ways (in-process oracle, per-hop remote, offloaded
# chase) with checksums compared byte-for-byte, on clean links and
# under seeded fault schedules. The race target above already runs
# these once; this target pins them by name so the suite cannot be
# silently lost to a test rename.
difftest:
	$(GO) test -v -count=1 ./internal/difftest

# trace-smoke runs a traced pointer chase over a real TCP far tier with
# injected RTT and validates the tentpole end to end: the merged Chrome
# trace carries causally linked client and server spans, and every op's
# four-component latency decomposition sums to its wall time.
trace-smoke:
	$(GO) test -run '^TestTraceSmoke$$' -count=1 -v .

# benchguard reruns the pipeline-depth, dirty write-back, replication,
# traversal-offload and wire-efficiency sweeps and fails if any guarded
# ratio fell below its floor relative to the checked-in
# BENCH_pipeline.json / BENCH_writeback.json / BENCH_replica.json /
# BENCH_chase.json / BENCH_wire.json baselines (the guarded values are
# in-run ratios, so host speed cancels out; the chase gate pins the
# hop-budget-16 speedup, the wire gate pins the analytics workload's
# bytes-per-op reduction over the legacy protocol). Pass or fail, it
# prints the per-row measured-vs-baseline delta tables.
benchguard:
	$(GO) run ./cmd/benchguard -baseline BENCH_pipeline.json -writeback-baseline BENCH_writeback.json -replica-baseline BENCH_replica.json -chase-baseline BENCH_chase.json -wire-baseline BENCH_wire.json

# fuzz-smoke runs each native fuzzer briefly (seed corpus + a short
# random exploration). Go allows one -fuzz pattern per invocation, so
# each fuzzer gets its own.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/rdma
	$(GO) test -run '^$$' -fuzz '^FuzzParseSpec$$' -fuzztime $(FUZZTIME) ./internal/faultnet

# chaos runs the fault-tolerance suite: the e2e workloads over the chaos
# proxy and the breaker outage demo (root), the transport's
# cut/timeout/uncertain-write/reconnect tests (internal/remote), the
# runtime breaker and async fault paths (internal/farmem), and the
# injector itself (internal/faultnet). Schedules are seeded in the tests,
# so a run is reproducible.
chaos:
	$(GO) test -v -run 'TestChaos|TestBreaker' .
	$(GO) test -v -run 'TestSerialClient|TestSerialWrite|TestPipelined|TestServerDrain|TestCRCSession' ./internal/remote
	$(GO) test -v -run 'TestBreaker|TestStoreRetry|TestDegraded|TestHarvest|TestClockSettle' ./internal/farmem
	$(GO) test -v ./internal/faultnet

bench:
	$(GO) test -bench . -benchtime 2s -run '^$$' .

# bench-smoke runs the real-socket sweeps briefly (TCP loopback) and
# records their tables for trend tracking.
bench-smoke: bench-writeback
	$(GO) run ./cmd/cardsbench -exp pipeline -scale quick -json > BENCH_pipeline.json
	@cat BENCH_pipeline.json

# bench-writeback runs the sync-vs-async dirty write-back sweep (real
# TCP loopback with injected per-frame RTT) and records the table.
bench-writeback:
	$(GO) run ./cmd/cardsbench -exp writeback -scale quick -json > BENCH_writeback.json
	@cat BENCH_writeback.json

# bench-replica runs the replicated far-tier sweep (R=1/2/3 over the
# same 3-backend TCP fleet with injected per-op service latency):
# write amplification, write-throughput retention vs the unreplicated
# baseline, and the failover latency of a read stream whose primary is
# killed mid-run.
bench-replica:
	$(GO) run ./cmd/cardsbench -exp replica -scale quick -json > BENCH_replica.json
	@cat BENCH_replica.json

# bench-chase runs the server-side traversal-offload sweep (dependent
# per-hop reads vs one CHASEBATCH per hop-budget window, real TCP
# loopback with 200µs injected per-frame RTT, hop budgets 2..64) and
# records the table.
bench-chase:
	$(GO) run ./cmd/cardsbench -exp chase -scale quick -json > BENCH_chase.json
	@cat BENCH_chase.json

# bench-wire runs the wire-efficiency ladder (legacy tagged batches →
# compact encoding → +adaptive LZ compression → +compiler-aided
# dirty-range write-back) over a bandwidth-shaped TCP loopback and
# records bytes-on-wire per op and end-to-end throughput per rung.
bench-wire:
	$(GO) run ./cmd/cardsbench -exp wire -scale quick -json > BENCH_wire.json
	@cat BENCH_wire.json

# bench-shard runs the sharded far-tier sweep (1→4 backends, real TCP
# loopback with injected per-connection service latency) and records the
# read-bandwidth scaling table.
bench-shard:
	$(GO) run ./cmd/cardsbench -exp shard -scale quick -json > BENCH_shard.json
	@cat BENCH_shard.json
