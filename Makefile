GO ?= go

.PHONY: build test check fmt vet race bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, and the full test
# suite under the race detector (exercises the concurrent remote server
# and the obs tracer/registry).
check: fmt vet race

bench:
	$(GO) test -bench . -benchtime 2s -run '^$$' .

# bench-smoke runs the pipeline-depth sweep briefly (real TCP loopback)
# and records the table for trend tracking.
bench-smoke:
	$(GO) run ./cmd/cardsbench -exp pipeline -scale quick -json > BENCH_pipeline.json
	@cat BENCH_pipeline.json
