GO ?= go

.PHONY: build test check fmt vet race chaos bench bench-smoke bench-shard fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, the full test
# suite under the race detector (exercises the concurrent remote server
# and the obs tracer/registry), and a short fuzzing smoke pass over the
# wire-format decoders.
check: fmt vet race fuzz-smoke

# fuzz-smoke runs each native fuzzer briefly (seed corpus + a short
# random exploration). Go allows one -fuzz pattern per invocation, so
# each fuzzer gets its own.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/rdma
	$(GO) test -run '^$$' -fuzz '^FuzzParseSpec$$' -fuzztime $(FUZZTIME) ./internal/faultnet

# chaos runs the fault-tolerance suite: the e2e workloads over the chaos
# proxy and the breaker outage demo (root), the transport's
# cut/timeout/uncertain-write/reconnect tests (internal/remote), the
# runtime breaker and async fault paths (internal/farmem), and the
# injector itself (internal/faultnet). Schedules are seeded in the tests,
# so a run is reproducible.
chaos:
	$(GO) test -v -run 'TestChaos|TestBreaker' .
	$(GO) test -v -run 'TestSerialClient|TestSerialWrite|TestPipelined|TestServerDrain|TestCRCSession' ./internal/remote
	$(GO) test -v -run 'TestBreaker|TestStoreRetry|TestDegraded|TestHarvest|TestClockSettle' ./internal/farmem
	$(GO) test -v ./internal/faultnet

bench:
	$(GO) test -bench . -benchtime 2s -run '^$$' .

# bench-smoke runs the pipeline-depth sweep briefly (real TCP loopback)
# and records the table for trend tracking.
bench-smoke:
	$(GO) run ./cmd/cardsbench -exp pipeline -scale quick -json > BENCH_pipeline.json
	@cat BENCH_pipeline.json

# bench-shard runs the sharded far-tier sweep (1→4 backends, real TCP
# loopback with injected per-connection service latency) and records the
# read-bandwidth scaling table.
bench-shard:
	$(GO) run ./cmd/cardsbench -exp shard -scale quick -json > BENCH_shard.json
	@cat BENCH_shard.json
