GO ?= go

.PHONY: build test check fmt vet race chaos bench bench-smoke bench-shard bench-writeback benchguard fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: formatting, static analysis, the full test
# suite under the race detector (exercises the concurrent remote server
# and the obs tracer/registry), a short fuzzing smoke pass over the
# wire-format decoders, and the pipeline-sweep regression guard against
# the checked-in baseline.
check: fmt vet race fuzz-smoke benchguard

# benchguard reruns the pipeline-depth sweep and fails if the best
# pipelined speedup fell more than 15% below the checked-in
# BENCH_pipeline.json baseline (speedups are in-run ratios, so host
# speed cancels out).
benchguard:
	$(GO) run ./cmd/benchguard -baseline BENCH_pipeline.json

# fuzz-smoke runs each native fuzzer briefly (seed corpus + a short
# random exploration). Go allows one -fuzz pattern per invocation, so
# each fuzzer gets its own.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/rdma
	$(GO) test -run '^$$' -fuzz '^FuzzParseSpec$$' -fuzztime $(FUZZTIME) ./internal/faultnet

# chaos runs the fault-tolerance suite: the e2e workloads over the chaos
# proxy and the breaker outage demo (root), the transport's
# cut/timeout/uncertain-write/reconnect tests (internal/remote), the
# runtime breaker and async fault paths (internal/farmem), and the
# injector itself (internal/faultnet). Schedules are seeded in the tests,
# so a run is reproducible.
chaos:
	$(GO) test -v -run 'TestChaos|TestBreaker' .
	$(GO) test -v -run 'TestSerialClient|TestSerialWrite|TestPipelined|TestServerDrain|TestCRCSession' ./internal/remote
	$(GO) test -v -run 'TestBreaker|TestStoreRetry|TestDegraded|TestHarvest|TestClockSettle' ./internal/farmem
	$(GO) test -v ./internal/faultnet

bench:
	$(GO) test -bench . -benchtime 2s -run '^$$' .

# bench-smoke runs the real-socket sweeps briefly (TCP loopback) and
# records their tables for trend tracking.
bench-smoke: bench-writeback
	$(GO) run ./cmd/cardsbench -exp pipeline -scale quick -json > BENCH_pipeline.json
	@cat BENCH_pipeline.json

# bench-writeback runs the sync-vs-async dirty write-back sweep (real
# TCP loopback with injected per-frame RTT) and records the table.
bench-writeback:
	$(GO) run ./cmd/cardsbench -exp writeback -scale quick -json > BENCH_writeback.json
	@cat BENCH_writeback.json

# bench-shard runs the sharded far-tier sweep (1→4 backends, real TCP
# loopback with injected per-connection service latency) and records the
# read-bandwidth scaling table.
bench-shard:
	$(GO) run ./cmd/cardsbench -exp shard -scale quick -json > BENCH_shard.json
	@cat BENCH_shard.json
