module cards

go 1.22
