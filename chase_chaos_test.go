package cards

// Traversal-offload chaos end-to-end: the list pointer chase runs over
// an R=2 replica group while each backend in turn is killed mid-run.
// Chases route to the highest-ranked in-sync member, so killing the
// member serving them mid-program must either promote the program to
// the next in-sync replica (counted on cards_chase_failovers_total) or
// degrade the traversal to per-hop epoch reads (counted on
// cards_chase_fallbacks_total) — and in every case the checksum must
// match the in-process reference exactly: a half-delivered path that
// leaked into the staging area would corrupt the traversal silently.

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/ir"
	"cards/internal/obs"
	"cards/internal/policy"
	"cards/internal/rdma"
	"cards/internal/remote"
	"cards/internal/replica"
	"cards/internal/workloads"
)

func TestChaseOffloadSurvivesBackendKillMidRun(t *testing.T) {
	const nBackends = 3
	build := func() (*ir.Module, error) {
		w, err := workloads.BuildChase("list", workloads.ChaseConfig{N: 32768, Seed: 9})
		if err != nil {
			return nil, err
		}
		return w.Module, nil
	}
	run := func(store farmem.Store, reg *obs.Registry) *core.RunResult {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Compile(m, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(core.RunConfig{
			Policy:          policy.AllRemotable,
			PinnedBudget:    0,
			RemotableBudget: 8 * 4096,
			Store:           store,
			RetryMax:        8,
			Obs:             reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(nil, nil).MainResult

	var failoversSeen, fallbacksSeen uint64
	midRunKills := 0

	for victim := 0; victim < nBackends; victim++ {
		t.Run("victim"+string(rune('0'+victim)), func(t *testing.T) {
			before := runtime.NumGoroutine()

			srvs := make([]*remote.Server, nBackends)
			backends := make([]farmem.Store, nBackends)
			for i := range srvs {
				srvs[i] = remote.NewServer()
				addr, err := srvs[i].Listen("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				c, err := remote.DialResilient(addr, remote.DialConfig{
					Timeout:   250 * time.Millisecond,
					RetryMax:  1,
					RetryBase: time.Millisecond,
					RetryCap:  10 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				backends[i] = c
			}
			rs, err := replica.New(backends, replica.Options{
				Replicas:         2,
				BreakerThreshold: 2,
				ProbeEvery:       20 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}

			// A zero-timeout drain is an abrupt kill: connections are
			// force-closed with requests still in flight, so the kill can
			// cut chase programs mid-program rather than wait them out.
			killed := make(chan time.Time, 1)
			go func() {
				time.Sleep(10 * time.Millisecond)
				srvs[victim].Drain(0)
				killed <- time.Now()
			}()

			reg := obs.NewRegistry()
			res := run(rs, reg)
			runEnd := time.Now()
			killTime := <-killed
			if res.MainResult != want {
				t.Errorf("chase chaos checksum %#x != in-process %#x", res.MainResult, want)
			}

			// The runtime's published counters must mirror its final
			// tallies exactly — the "exact obs accounting" contract.
			snap := reg.Snapshot()
			st := res.Runtime
			for _, m := range []struct {
				name string
				want uint64
			}{
				{farmem.MetricChasesIssued, st.ChasesIssued},
				{farmem.MetricChaseHopsStaged, st.ChaseHopsStaged},
				{farmem.MetricChaseStagingHits, st.ChaseStagingHits},
				{farmem.MetricChaseStale, st.ChaseStale},
				{farmem.MetricChaseFallbacks, st.ChaseFallbacks},
			} {
				if got := snap.Counter(m.name); got != m.want {
					t.Errorf("%s = %d, runtime tally %d", m.name, got, m.want)
				}
			}

			midRun := killTime.Before(runEnd)
			if midRun {
				midRunKills++
			}
			failovers := rs.Obs().Snapshot().Counter(replica.MetricChaseFailovers)
			failoversSeen += failovers
			fallbacksSeen += st.ChaseFallbacks
			t.Logf("checksum %#x, mid-run=%v: %d chases, %d hops staged, %d hits, %d stale, %d fallbacks, %d chase failovers",
				res.MainResult, midRun, st.ChasesIssued, st.ChaseHopsStaged,
				st.ChaseStagingHits, st.ChaseStale, st.ChaseFallbacks, failovers)

			rs.Close()
			for _, srv := range srvs {
				srv.Close()
			}
			checkGoroutines(t, before)
		})
	}

	// A kill during the fill phase marks the victim out-of-sync off the
	// write path, after which the chase admission rule routes around it
	// silently — so a zero trace here is legitimate (the deterministic
	// mid-stream promotion is pinned by
	// TestChaseFailoverOnPrimaryKillMidStream below).
	t.Logf("across victims: %d mid-run kills, %d chase failovers, %d per-hop fallbacks",
		midRunKills, failoversSeen, fallbacksSeen)
}

// TestChaseFailoverOnPrimaryKillMidStream pins the mid-stream promotion
// deterministically: a replica pair holds a fully replicated chain, a
// chase is served by the start object's primary, the primary is killed
// abruptly, and the very next chase — still routed to the primary,
// which is in-sync and gated open because nothing else has failed —
// must error on the dead session, count one promotion on
// cards_chase_failovers_total, and complete on the surviving in-sync
// replica with a byte-identical path.
func TestChaseFailoverOnPrimaryKillMidStream(t *testing.T) {
	before := runtime.NumGoroutine()
	const (
		nObjs   = 64
		objSize = 64
		ds      = 1
	)

	srvs := make([]*remote.Server, 2)
	backends := make([]farmem.Store, 2)
	for i := range srvs {
		srvs[i] = remote.NewServer()
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := remote.DialResilient(addr, remote.DialConfig{
			Timeout:   250 * time.Millisecond,
			RetryMax:  1,
			RetryBase: time.Millisecond,
			RetryCap:  10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = c
	}
	rs, err := replica.New(backends, replica.Options{
		Replicas:         2,
		BreakerThreshold: 2,
		ProbeEvery:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A fully replicated chain (R = N = 2, so both members hold every
	// object and the survivor can serve the whole path): object i links
	// to i+1 through a tagged far pointer at offset 8; the last object
	// carries an untagged terminal sentinel.
	images := make([][]byte, nObjs)
	for i := 0; i < nObjs; i++ {
		obj := make([]byte, objSize)
		for b := range obj {
			obj[b] = byte(i ^ b)
		}
		var next uint64 = 0xDEAD_BEEF
		if i < nObjs-1 {
			next = 1<<63 | uint64(ds)<<48 | uint64(i+1)*objSize
		}
		for b := 0; b < 8; b++ {
			obj[8+b] = byte(next >> (8 * b))
		}
		images[i] = obj
		if err := rs.WriteObj(ds, i, obj); err != nil {
			t.Fatalf("WriteObj(%d): %v", i, err)
		}
	}

	req := rdma.ChaseReq{DS: ds, Start: 0, ObjSize: objSize, NextOff: 8, Hops: 16}
	checkPath := func(res rdma.ChaseResult, when string) {
		t.Helper()
		if len(res.Hops) == 0 {
			t.Fatalf("%s: empty path", when)
		}
		for _, h := range res.Hops {
			if int(h.Idx) >= nObjs || !bytes.Equal(h.Data, images[h.Idx]) {
				t.Fatalf("%s: hop %d not byte-identical to the written image", when, h.Idx)
			}
		}
	}

	pre, err := rs.Chase(req)
	if err != nil {
		t.Fatalf("pre-kill chase: %v", err)
	}
	checkPath(pre, "pre-kill")

	// Kill the member that just served the chase — the start object's
	// primary — abruptly: the next program is still routed to it (it is
	// in-sync and its breaker is closed) and must fail over mid-stream.
	var gbuf [replica.MaxReplicas]int
	victim := rs.GroupOf(ds, 0, gbuf[:0])[0]
	srvs[victim].Drain(0)

	post, err := rs.Chase(req)
	if err != nil {
		t.Fatalf("post-kill chase: %v", err)
	}
	checkPath(post, "post-kill")
	if len(post.Hops) != len(pre.Hops) || post.Final != pre.Final || post.Status != pre.Status {
		t.Errorf("failover path differs: pre %d hops final %#x, post %d hops final %#x",
			len(pre.Hops), pre.Final, len(post.Hops), post.Final)
	}
	failovers := rs.Obs().Snapshot().Counter(replica.MetricChaseFailovers)
	if failovers == 0 {
		t.Error("cards_chase_failovers_total = 0: the dead primary's program was not promoted")
	}
	t.Logf("victim %d: %d hops re-served by the survivor, %d chase failovers", victim, len(post.Hops), failovers)

	rs.Close()
	for _, srv := range srvs {
		srv.Close()
	}
	checkGoroutines(t, before)
}
