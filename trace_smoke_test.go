package cards

// Trace smoke (make trace-smoke): a pointer-chase workload over a real
// TCP far tier with ~200µs injected RTT, distributed tracing on and
// every root sampled. Asserts the two tentpole end-to-end properties:
// the merged Chrome trace validates and carries causally-linked client
// and server spans, and every recorded op's four-component latency
// decomposition sums to (within 10% of) its measured wall time.

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
	"time"

	"cards/internal/faultnet"
	"cards/internal/remote"
	"cards/internal/testutil"
)

const traceSmokeRTT = 200 * time.Microsecond

func TestTraceSmoke(t *testing.T) {
	testutil.NoGoroutineLeaks(t)

	srv := remote.NewServer()
	srv.ConnWrap = func(c io.ReadWriteCloser) io.ReadWriteCloser {
		return faultnet.Wrap(c, faultnet.Config{Latency: traceSmokeRTT, Seed: 1})
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rt, err := New(Config{
		RemotableMemory: 16 << 10, // far smaller than the data: every step misses or prefetches
		RemoteAddr:      addr,
		Trace:           true,
		TraceTarget:     -1, // bounded run: sample every root
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const n = 2048
	l, err := NewList[int64](rt, "chase", Remotable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := l.PushBack(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var sum int64
	if err := l.Each(func(v int64) bool { sum += v; return true }); err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("chase sum = %d, want %d", sum, want)
	}

	// The flight recorder saw every completed remote op's decomposition.
	ops := rt.SlowOps()
	if len(ops) == 0 {
		t.Fatal("flight recorder retained no ops")
	}
	sawWire := uint64(0)
	for _, op := range ops {
		parts := op.ClientQueueUS + op.WireUS + op.ServerQueueUS + op.ServerServiceUS
		diff := parts - op.TotalUS
		if parts < op.TotalUS {
			diff = op.TotalUS - parts
		}
		if diff > op.TotalUS/10 {
			t.Errorf("op %s ds%d[%d]: components sum to %dµs, wall time %dµs (>10%% apart)",
				op.Op, op.DS, op.Idx, parts, op.TotalUS)
		}
		if op.TraceID == 0 {
			t.Errorf("op %s ds%d[%d]: no trace ID", op.Op, op.DS, op.Idx)
		}
		if op.Attempts < 1 {
			t.Errorf("op %s ds%d[%d]: attempts = %d", op.Op, op.DS, op.Idx, op.Attempts)
		}
		if op.WireUS > sawWire {
			sawWire = op.WireUS
		}
	}
	// The injected server-side read latency must show up as wire time,
	// not be misattributed to the server's queue/service stamps.
	if sawWire < uint64(traceSmokeRTT.Microseconds()) {
		t.Errorf("max wire component %dµs, want >= injected %v", sawWire, traceSmokeRTT)
	}

	// The merged Chrome trace validates and links runtime, transport and
	// server spans of one op through a shared args.trace ID.
	var buf bytes.Buffer
	if err := rt.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Ph   string           `json:"ph"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace does not validate: %v", err)
	}
	traceIDs := func(cat string) map[int64]bool {
		ids := make(map[int64]bool)
		for _, ev := range tr.TraceEvents {
			if ev.Cat == cat && ev.Args["trace"] != 0 {
				ids[ev.Args["trace"]] = true
			}
		}
		return ids
	}
	farm, rem, sv := traceIDs("farmem"), traceIDs("remote"), traceIDs("server")
	if len(farm) == 0 || len(rem) == 0 || len(sv) == 0 {
		t.Fatalf("merged trace missing a layer: farmem=%d remote=%d server=%d traced IDs",
			len(farm), len(rem), len(sv))
	}
	linked := false
	for id := range sv {
		if rem[id] && farm[id] {
			linked = true
			break
		}
	}
	if !linked {
		t.Error("no trace ID shared across farmem, remote and server spans")
	}
}
