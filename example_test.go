package cards_test

import (
	"fmt"
	"log"

	"cards"
)

// The basic flow: create a runtime with split local memory, put an array
// on the far tier, use it like a local container.
func Example() {
	rt, err := cards.New(cards.Config{
		PinnedMemory:    128 << 10,
		RemotableMemory: 64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	a, err := cards.NewArray[int64](rt, "squares", 1000, cards.Remotable)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.Fill(func(i int) int64 { return int64(i) * int64(i) }); err != nil {
		log.Fatal(err)
	}
	v, err := a.Get(30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output: 900
}

// Placement hints: pinned structures never pay guard slow paths; the
// runtime reports whether a structure stayed local.
func ExampleNewArray() {
	rt, _ := cards.New(cards.Config{PinnedMemory: 64 << 10, RemotableMemory: 32 << 10})
	defer rt.Close()

	hot, _ := cards.NewArray[float64](rt, "hot-index", 512, cards.Pinned)
	cold, _ := cards.NewArray[float64](rt, "cold-log", 4096, cards.Remotable)

	hot.Set(0, 1.5)
	cold.Set(0, 2.5)
	fmt.Println(hot.Local(), cold.Local())
	// Output: true false
}

// Reduce folds a remote array; sequential access keeps the stride
// prefetcher ahead of the scan.
func ExampleReduce() {
	rt, _ := cards.New(cards.Config{RemotableMemory: 64 << 10})
	defer rt.Close()

	a, _ := cards.NewArray[int64](rt, "data", 10000, cards.Remotable)
	a.Fill(func(i int) int64 { return int64(i) })
	sum, err := cards.Reduce(a, int64(0), func(acc, v int64) int64 { return acc + v })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sum)
	// Output: 49995000
}

// Lists get jump-pointer prefetching: nodes are packed in append order,
// so forward iteration overlaps fetches.
func ExampleList_Each() {
	rt, _ := cards.New(cards.Config{RemotableMemory: 32 << 10})
	defer rt.Close()

	l, _ := cards.NewList[int64](rt, "queue", cards.Remotable)
	for i := int64(1); i <= 5; i++ {
		l.PushBack(i * 10)
	}
	l.Each(func(v int64) bool {
		fmt.Println(v)
		return v < 30 // stop early
	})
	// Output:
	// 10
	// 20
	// 30
}

// Maps hash int64 keys to scalar values over two far-memory structures
// (buckets + chain nodes).
func ExampleMap() {
	rt, _ := cards.New(cards.Config{PinnedMemory: 64 << 10, RemotableMemory: 32 << 10})
	defer rt.Close()

	m, _ := cards.NewMap[float64](rt, "prices", 256, cards.Linear)
	m.Put(7, 19.99)
	m.Put(11, 4.25)
	v, ok, _ := m.Get(7)
	fmt.Println(v, ok)
	_, ok, _ = m.Get(99)
	fmt.Println(ok)
	// Output:
	// 19.99 true
	// false
}
