package cards

import (
	"fmt"
	"math"

	"cards/internal/farmem"
)

// Scalar is the element constraint of the remote containers: 64-bit
// words, matching the runtime's cell size.
type Scalar interface {
	int64 | uint64 | float64
}

func toBits[T Scalar](v T) uint64 {
	switch x := any(v).(type) {
	case int64:
		return uint64(x)
	case uint64:
		return x
	case float64:
		return math.Float64bits(x)
	}
	panic("unreachable")
}

func fromBits[T Scalar](b uint64) T {
	var zero T
	switch any(zero).(type) {
	case int64:
		return any(int64(b)).(T)
	case uint64:
		return any(b).(T)
	case float64:
		return any(math.Float64frombits(b)).(T)
	}
	panic("unreachable")
}

// Array is a fixed-length remote array of scalars. Sequential scans are
// covered by the majority-stride prefetcher.
type Array[T Scalar] struct {
	h    *dsHandle
	base uint64
	n    int
}

// NewArray allocates a remote array of n elements under the given
// placement.
func NewArray[T Scalar](r *Runtime, name string, n int, placement Placement) (*Array[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("cards: array %q: length %d", name, n)
	}
	h, err := r.register(name, Strided, placement, 4096, 8, nil, false)
	if err != nil {
		return nil, err
	}
	base, err := r.rt.DSAlloc(h.id, int64(n)*8)
	if err != nil {
		return nil, err
	}
	return &Array[T]{h: h, base: base, n: n}, nil
}

// Len returns the element count.
func (a *Array[T]) Len() int { return a.n }

// Stats returns the array's runtime counters.
func (a *Array[T]) Stats() DSStats { return a.h.Stats() }

// Local reports whether the array has never been remoted.
func (a *Array[T]) Local() bool { return a.h.Local() }

func (a *Array[T]) addr(i int) (uint64, error) {
	if i < 0 || i >= a.n {
		return 0, fmt.Errorf("cards: array index %d out of range [0,%d)", i, a.n)
	}
	return a.base + uint64(i)*8, nil
}

// Get reads element i (localizing its object if remote).
func (a *Array[T]) Get(i int) (T, error) {
	var zero T
	addr, err := a.addr(i)
	if err != nil {
		return zero, err
	}
	p, err := a.h.r.rt.Guard(addr, false)
	if err != nil {
		return zero, err
	}
	bits, err := a.h.r.rt.ReadWord(p)
	if err != nil {
		return zero, err
	}
	return fromBits[T](bits), nil
}

// Set writes element i.
func (a *Array[T]) Set(i int, v T) error {
	addr, err := a.addr(i)
	if err != nil {
		return err
	}
	p, err := a.h.r.rt.GuardSpan(addr, true, 0, 8)
	if err != nil {
		return err
	}
	return a.h.r.rt.WriteWord(p, toBits(v))
}

// List is a singly linked remote list. Nodes are packed into compact
// objects in append order, so forward iteration is covered by the
// jump-pointer prefetcher.
type List[T Scalar] struct {
	h          *dsHandle
	head, tail uint64
	n          int
}

// listNodeBytes is the node layout: value word + next pointer word.
const listNodeBytes = 16

// NewList creates an empty remote list.
func NewList[T Scalar](r *Runtime, name string, placement Placement) (*List[T], error) {
	h, err := r.register(name, PointerChase, placement, 1024, listNodeBytes, []int{8}, true)
	if err != nil {
		return nil, err
	}
	return &List[T]{h: h}, nil
}

// Len returns the element count.
func (l *List[T]) Len() int { return l.n }

// Stats returns the list's runtime counters.
func (l *List[T]) Stats() DSStats { return l.h.Stats() }

// PushBack appends a value.
func (l *List[T]) PushBack(v T) error {
	rt := l.h.r.rt
	node, err := rt.DSAlloc(l.h.id, listNodeBytes)
	if err != nil {
		return err
	}
	p, err := rt.GuardSpan(node, true, 0, 8)
	if err != nil {
		return err
	}
	if err := rt.WriteWord(p, toBits(v)); err != nil {
		return err
	}
	pn, err := rt.GuardSpan(node+8, true, 0, 8)
	if err != nil {
		return err
	}
	if err := rt.WriteWord(pn, 0); err != nil {
		return err
	}
	if l.tail == 0 {
		l.head, l.tail = node, node
	} else {
		pt, err := rt.GuardSpan(l.tail+8, true, 0, 8)
		if err != nil {
			return err
		}
		if err := rt.WriteWord(pt, node); err != nil {
			return err
		}
		l.tail = node
	}
	l.n++
	return nil
}

// Each walks the list in order, stopping early if fn returns false.
func (l *List[T]) Each(fn func(v T) bool) error {
	rt := l.h.r.rt
	cur := l.head
	for cur != 0 {
		p, err := rt.Guard(cur, false)
		if err != nil {
			return err
		}
		bits, err := rt.ReadWord(p)
		if err != nil {
			return err
		}
		if !fn(fromBits[T](bits)) {
			return nil
		}
		pn, err := rt.Guard(cur+8, false)
		if err != nil {
			return err
		}
		cur, err = rt.ReadWord(pn)
		if err != nil {
			return err
		}
	}
	return nil
}

// Map is a remote hash map from int64 keys to scalar values (chained
// buckets, load factor <= 1 at the configured capacity).
type Map[T Scalar] struct {
	buckets *dsHandle
	nodes   *dsHandle
	base    uint64 // bucket array base address
	nBkt    uint64
	n       int
}

// mapNodeBytes is the node layout: key, value, next.
const mapNodeBytes = 24

// NewMap creates a remote map sized for about capacity entries.
func NewMap[T Scalar](r *Runtime, name string, capacity int, placement Placement) (*Map[T], error) {
	if capacity <= 0 {
		capacity = 16
	}
	nBkt := uint64(1)
	for nBkt < uint64(capacity) {
		nBkt <<= 1
	}
	bh, err := r.register(name+".buckets", Indirect, placement, 4096, 8, []int{0}, false)
	if err != nil {
		return nil, err
	}
	nh, err := r.register(name+".nodes", PointerChase, placement, 1024, mapNodeBytes, []int{16}, true)
	if err != nil {
		return nil, err
	}
	base, err := r.rt.DSAlloc(bh.id, int64(nBkt)*8)
	if err != nil {
		return nil, err
	}
	return &Map[T]{buckets: bh, nodes: nh, base: base, nBkt: nBkt}, nil
}

// Len returns the entry count.
func (m *Map[T]) Len() int { return m.n }

// BucketStats and NodeStats expose the two underlying structures.
func (m *Map[T]) BucketStats() DSStats { return m.buckets.Stats() }

// NodeStats returns the chain-node structure's counters.
func (m *Map[T]) NodeStats() DSStats { return m.nodes.Stats() }

func (m *Map[T]) slot(k int64) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return m.base + ((h>>17)&(m.nBkt-1))*8
}

// Put inserts or overwrites a key.
func (m *Map[T]) Put(k int64, v T) error {
	rt := m.buckets.r.rt
	slot := m.slot(k)
	// Search the chain for an existing key.
	ps, err := rt.Guard(slot, false)
	if err != nil {
		return err
	}
	cur, err := rt.ReadWord(ps)
	if err != nil {
		return err
	}
	head := cur
	for cur != 0 {
		pk, err := rt.Guard(cur, false)
		if err != nil {
			return err
		}
		key, err := rt.ReadWord(pk)
		if err != nil {
			return err
		}
		if int64(key) == k {
			pv, err := rt.GuardSpan(cur+8, true, 0, 8)
			if err != nil {
				return err
			}
			return rt.WriteWord(pv, toBits(v))
		}
		pn, err := rt.Guard(cur+16, false)
		if err != nil {
			return err
		}
		cur, err = rt.ReadWord(pn)
		if err != nil {
			return err
		}
	}
	// Prepend a fresh node.
	node, err := rt.DSAlloc(m.nodes.id, mapNodeBytes)
	if err != nil {
		return err
	}
	for _, w := range []struct {
		off  uint64
		bits uint64
	}{{0, uint64(k)}, {8, toBits(v)}, {16, head}} {
		p, err := rt.GuardSpan(node+w.off, true, 0, 8)
		if err != nil {
			return err
		}
		if err := rt.WriteWord(p, w.bits); err != nil {
			return err
		}
	}
	pw, err := rt.GuardSpan(slot, true, 0, 8)
	if err != nil {
		return err
	}
	if err := rt.WriteWord(pw, node); err != nil {
		return err
	}
	m.n++
	return nil
}

// Get looks a key up; ok is false when absent.
func (m *Map[T]) Get(k int64) (v T, ok bool, err error) {
	rt := m.buckets.r.rt
	ps, err := rt.Guard(m.slot(k), false)
	if err != nil {
		return v, false, err
	}
	cur, err := rt.ReadWord(ps)
	if err != nil {
		return v, false, err
	}
	for cur != 0 {
		pk, err := rt.Guard(cur, false)
		if err != nil {
			return v, false, err
		}
		key, err := rt.ReadWord(pk)
		if err != nil {
			return v, false, err
		}
		if int64(key) == k {
			pv, err := rt.Guard(cur+8, false)
			if err != nil {
				return v, false, err
			}
			bits, err := rt.ReadWord(pv)
			if err != nil {
				return v, false, err
			}
			return fromBits[T](bits), true, nil
		}
		pn, err := rt.Guard(cur+16, false)
		if err != nil {
			return v, false, err
		}
		cur, err = rt.ReadWord(pn)
		if err != nil {
			return v, false, err
		}
	}
	return v, false, nil
}

var _ = farmem.PatternStrided // keep the import grounded for doc links

// Fill sets every element to fn(i) in one forward pass — the
// prefetch-friendly way to initialize a remote array.
func (a *Array[T]) Fill(fn func(i int) T) error {
	for i := 0; i < a.n; i++ {
		if err := a.Set(i, fn(i)); err != nil {
			return fmt.Errorf("cards: fill at %d: %w", i, err)
		}
	}
	return nil
}

// Scan visits every element in order, stopping early if fn returns
// false. Sequential scans are exactly what the stride prefetcher covers,
// so Scan over a remote array overlaps fetches with the visit function.
func (a *Array[T]) Scan(fn func(i int, v T) bool) error {
	for i := 0; i < a.n; i++ {
		v, err := a.Get(i)
		if err != nil {
			return fmt.Errorf("cards: scan at %d: %w", i, err)
		}
		if !fn(i, v) {
			return nil
		}
	}
	return nil
}

// Reduce folds the array left to right.
func Reduce[T Scalar, A any](a *Array[T], init A, fn func(acc A, v T) A) (A, error) {
	acc := init
	err := a.Scan(func(_ int, v T) bool {
		acc = fn(acc, v)
		return true
	})
	return acc, err
}
