package cards

// Replicated far-tier end-to-end tests: compiled workloads running over
// replica groups (R=2 of a 3-backend fleet) with one backend killed
// mid-run. The replica layer must hide the death completely — exact
// checksums, zero degraded operations — and the restarted backend must
// resync to the survivors' epochs before rejoining the read set.

import (
	"runtime"
	"testing"
	"time"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/ir"
	"cards/internal/policy"
	"cards/internal/remote"
	"cards/internal/replica"
	"cards/internal/workloads"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// TestReplicaKillAnyBackendMidRun is the headline chaos demo: BFS
// (striped flat pools) and the list pointer chase (pinned recursive
// structure) run over R=2 replica groups while each backend in turn is
// killed mid-run. Checksums must match the in-process reference
// exactly and no operation may surface as degraded: every object's
// group keeps a live replica, writes ack at W=1 on the survivor, and
// reads fail over to the highest-epoch surviving replica. After the
// run the dead backend is restarted on the same address; anti-entropy
// must bring every stale object up to the survivors' epochs before the
// member rejoins the read set.
// TestReplicaKillBackendRangeWriteback reruns the kill-a-backend chaos
// scenario with compiler-aided dirty-range write-back on: every group
// write ships only the modified extents (epoch-stamped WRITERANGE) to
// the replicas that speak the verb. Killing a backend mid-run leaves
// range writes in uncertain states; the sub-write failure marks the
// member divergent and anti-entropy repairs it with full objects, so
// the checksum must stay exact and the restarted victim must converge
// to the survivors' epochs — a replica can never be wedged by a splice
// it may or may not have applied.
func TestReplicaKillBackendRangeWriteback(t *testing.T) {
	const nBackends = 3
	before := runtime.NumGoroutine()
	build := func() (*ir.Module, error) {
		return workloads.BuildBFS(workloads.BFSConfig{
			Vertices: 512, Degree: 6, Trials: 2, Seed: 11}).Module, nil
	}
	run := func(store farmem.Store) *core.RunResult {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.Compile(m, core.CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(core.RunConfig{
			Policy:          policy.AllRemotable,
			PinnedBudget:    0,
			RemotableBudget: 8 * 4096,
			Store:           store,
			RetryMax:        8,
			RangeWriteback:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(nil).MainResult

	srvs := make([]*remote.Server, nBackends)
	addrs := make([]string, nBackends)
	backends := make([]farmem.Store, nBackends)
	for i := range srvs {
		srvs[i] = remote.NewServer()
		addr, err := srvs[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		c, err := remote.DialResilient(addr, remote.DialConfig{
			Timeout:   250 * time.Millisecond,
			RetryMax:  1,
			RetryBase: time.Millisecond,
			RetryCap:  10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = c
	}
	rs, err := replica.New(backends, replica.Options{
		Replicas:         2,
		BreakerThreshold: 2,
		ProbeEvery:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const victim = 0
	go func() {
		time.Sleep(50 * time.Millisecond)
		srvs[victim].Drain(20 * time.Millisecond)
	}()

	res := run(rs)
	if res.MainResult != want {
		t.Errorf("range-writeback replica checksum %#x != in-process %#x", res.MainResult, want)
	}
	if res.Runtime.RangeWriteBacks == 0 {
		t.Error("no range write-backs during the replicated run: the range path never engaged")
	}
	snap := rs.Obs().Snapshot()
	if qf := snap.Counter(replica.MetricReplicaQuorumFailures); qf != 0 {
		t.Errorf("%d write quorum failures during a single-backend kill", qf)
	}
	t.Logf("range chaos: %d range write-backs, %d bytes saved, %d failovers",
		res.Runtime.RangeWriteBacks, res.Runtime.RangeBytesSaved,
		snap.Counter(replica.MetricReplicaFailovers))

	// Restart the victim with its (now stale) store; anti-entropy must
	// bring every shared object to the survivors' epochs — including
	// objects whose range writes died uncertain at the kill.
	srv2 := remote.NewServer()
	srv2.Store = srvs[victim].Store
	if _, err := srv2.Listen(addrs[victim]); err != nil {
		t.Fatal(err)
	}
	if !waitUntil(t, 15*time.Second, func() bool {
		return rs.MemberInSync(victim) && rs.MemberState(victim) == farmem.BreakerClosed
	}) {
		t.Fatalf("victim never rejoined: state=%v inSync=%v",
			rs.MemberState(victim), rs.MemberInSync(victim))
	}
	var gbuf [replica.MaxReplicas]int
	checked := 0
	for other := 0; other < nBackends; other++ {
		if other == victim {
			continue
		}
		for _, k := range srvs[other].Store.Keys() {
			ds, idx := int(k[0]), int(k[1])
			group := rs.GroupOf(ds, idx, gbuf[:0])
			inGroup := false
			for _, gi := range group {
				inGroup = inGroup || gi == victim
			}
			if !inGroup {
				continue
			}
			if vEp, oEp := srv2.Store.Epoch(k[0], k[1]), srvs[other].Store.Epoch(k[0], k[1]); vEp != oEp {
				t.Errorf("obj (%d,%d): victim epoch %d != survivor epoch %d after resync", ds, idx, vEp, oEp)
			}
			checked++
		}
	}
	t.Logf("victim resynced: %d objects epoch-checked", checked)

	rs.Close()
	srv2.Close()
	for i, srv := range srvs {
		if i != victim {
			srv.Close()
		}
	}
	checkGoroutines(t, before)
}

func TestReplicaKillAnyBackendMidRun(t *testing.T) {
	const nBackends = 3
	cases := map[string]struct {
		killAfter time.Duration
		build     func() (*ir.Module, error)
	}{
		"bfs": {
			killAfter: 50 * time.Millisecond,
			build: func() (*ir.Module, error) {
				return workloads.BuildBFS(workloads.BFSConfig{
					Vertices: 512, Degree: 6, Trials: 2, Seed: 11}).Module, nil
			},
		},
		"pointer_chase": {
			killAfter: 10 * time.Millisecond,
			build: func() (*ir.Module, error) {
				w, err := workloads.BuildChase("list", workloads.ChaseConfig{N: 16384, Seed: 9})
				if err != nil {
					return nil, err
				}
				return w.Module, nil
			},
		},
	}
	for name, tc := range cases {
		build, killAfter := tc.build, tc.killAfter
		t.Run(name, func(t *testing.T) {
			run := func(store farmem.Store) uint64 {
				m, err := build()
				if err != nil {
					t.Fatal(err)
				}
				c, err := core.Compile(m, core.CompileOptions{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(core.RunConfig{
					Policy:          policy.AllRemotable,
					PinnedBudget:    0,
					RemotableBudget: 8 * 4096,
					Store:           store,
					RetryMax:        8,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res.MainResult
			}
			want := run(nil) // in-process reference checksum

			for victim := 0; victim < nBackends; victim++ {
				t.Run("victim"+string(rune('0'+victim)), func(t *testing.T) {
					before := runtime.NumGoroutine()

					srvs := make([]*remote.Server, nBackends)
					addrs := make([]string, nBackends)
					backends := make([]farmem.Store, nBackends)
					for i := range srvs {
						srvs[i] = remote.NewServer()
						addr, err := srvs[i].Listen("127.0.0.1:0")
						if err != nil {
							t.Fatal(err)
						}
						addrs[i] = addr
						c, err := remote.DialResilient(addr, remote.DialConfig{
							Timeout:   250 * time.Millisecond,
							RetryMax:  1,
							RetryBase: time.Millisecond,
							RetryCap:  10 * time.Millisecond,
						})
						if err != nil {
							t.Fatal(err)
						}
						backends[i] = c
					}
					rs, err := replica.New(backends, replica.Options{
						Replicas:         2,
						BreakerThreshold: 2,
						ProbeEvery:       20 * time.Millisecond,
					})
					if err != nil {
						t.Fatal(err)
					}

					// Kill the victim shortly into the run. If the workload
					// finishes first the kill degenerates to a post-run
					// outage; the failover assertion below is skipped then.
					killed := make(chan time.Time, 1)
					go func() {
						time.Sleep(killAfter)
						srvs[victim].Drain(20 * time.Millisecond)
						killed <- time.Now()
					}()

					got := run(rs)
					runEnd := time.Now()
					killTime := <-killed
					if got != want {
						t.Errorf("replicated chaos checksum %#x != in-process %#x", got, want)
					}

					// Zero degraded operations: every write met its quorum and
					// every read found a live replica.
					snap := rs.Obs().Snapshot()
					if qf := snap.Counter(replica.MetricReplicaQuorumFailures); qf != 0 {
						t.Errorf("%d write quorum failures during a single-backend kill", qf)
					}
					midRun := killTime.Before(runEnd)
					failovers := snap.Counter(replica.MetricReplicaFailovers)
					if midRun && rs.MemberState(victim) == farmem.BreakerClosed && failovers == 0 {
						// The kill landed mid-run but left no trace: the victim
						// took no traffic afterwards — only plausible for a
						// pinned structure whose group excludes it.
						t.Logf("victim %d saw no post-kill traffic", victim)
					}
					t.Logf("checksum %#x, mid-run=%v, failovers=%d", got, midRun, failovers)

					// Restart the dead backend on the same address with the
					// same object store (stale epochs for everything written
					// after the kill). Anti-entropy must repair it to the
					// survivors' epochs before it rejoins the read set.
					srv2 := remote.NewServer()
					srv2.Store = srvs[victim].Store
					if _, err := srv2.Listen(addrs[victim]); err != nil {
						t.Fatal(err)
					}
					if !waitUntil(t, 15*time.Second, func() bool {
						return rs.MemberInSync(victim) &&
							rs.MemberState(victim) == farmem.BreakerClosed
					}) {
						t.Fatalf("victim %d never rejoined: state=%v inSync=%v",
							victim, rs.MemberState(victim), rs.MemberInSync(victim))
					}

					// Epoch agreement: every object whose group contains the
					// victim carries the same epoch on the victim as on the
					// survivor that took the writes.
					var gbuf [replica.MaxReplicas]int
					checkedObjs := 0
					for other := 0; other < nBackends; other++ {
						if other == victim {
							continue
						}
						for _, k := range srvs[other].Store.Keys() {
							ds, idx := int(k[0]), int(k[1])
							group := rs.GroupOf(ds, idx, gbuf[:0])
							inGroup := false
							for _, gi := range group {
								inGroup = inGroup || gi == victim
							}
							if !inGroup {
								continue
							}
							vEp := srv2.Store.Epoch(k[0], k[1])
							oEp := srvs[other].Store.Epoch(k[0], k[1])
							if vEp != oEp {
								t.Errorf("obj (%d,%d): victim epoch %d != survivor epoch %d after resync",
									ds, idx, vEp, oEp)
							}
							checkedObjs++
						}
					}
					if midRun && failovers > 0 && checkedObjs == 0 {
						t.Error("no shared objects found for the epoch check")
					}
					t.Logf("victim %d resynced: %d objects epoch-checked", victim, checkedObjs)

					rs.Close()
					srv2.Close()
					for i, srv := range srvs {
						if i != victim {
							srv.Close()
						}
					}
					checkGoroutines(t, before)
				})
			}
		})
	}
}
