// Package cards is the public face of the CaRDS reproduction: a
// far-memory runtime with per-data-structure remoting and prefetching
// policies, plus remote container types for direct library use.
//
// Two usage models mirror the paper:
//
//   - Library model (this package): construct a Runtime, create remote
//     Arrays/Lists/Maps with access-pattern hints, and use them like
//     local containers while the runtime manages placement, caching,
//     prefetching and eviction — the AIFM-style interface.
//   - Compiler model (internal/core + cmd/cardsc): write a program in
//     the project IR, let the CaRDS passes discover the data structures
//     and inject the policies automatically, and execute it on the same
//     runtime. The paper's evaluation (cmd/cardsbench) uses this path.
//
// The network tier is simulated by default (deterministic virtual time
// calibrated to the paper's Table 1); pass RemoteAddr to back far memory
// with a real cardsd server over TCP.
package cards

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cards/internal/farmem"
	"cards/internal/netsim"
	"cards/internal/obs"
	"cards/internal/prefetch"
	"cards/internal/remote"
	"cards/internal/replica"
	"cards/internal/shardmap"
)

// Pattern is the access-pattern hint for a data structure; it selects
// the dedicated prefetcher (paper §4.2).
type Pattern int

// Access-pattern hints.
const (
	// Unknown disables prefetching for the structure.
	Unknown Pattern = iota
	// Strided structures get the majority-stride prefetcher.
	Strided
	// PointerChase structures get the jump-pointer prefetcher (or the
	// greedy recursive prefetcher when elements carry several pointers).
	PointerChase
	// Indirect (gather-style) structures are not prefetched; their
	// index arrays are.
	Indirect
)

func (p Pattern) farmem() farmem.Pattern {
	switch p {
	case Strided:
		return farmem.PatternStrided
	case PointerChase:
		return farmem.PatternPointerChase
	case Indirect:
		return farmem.PatternIndirect
	}
	return farmem.PatternUnknown
}

// Placement is the remoting decision for a structure.
type Placement int

// Placement choices (§4.2 "Remoting policy selection").
const (
	// Linear defers to the runtime: pinned while pinned memory lasts.
	Linear Placement = iota
	// Pinned requests non-remotable local memory (the runtime may still
	// spill if the structure does not fit).
	Pinned
	// Remotable marks the structure eligible for far memory.
	Remotable
)

func (p Placement) farmem() farmem.Placement {
	switch p {
	case Pinned:
		return farmem.PlacePinned
	case Remotable:
		return farmem.PlaceRemotable
	}
	return farmem.PlaceLinear
}

// Config configures a Runtime.
type Config struct {
	// PinnedMemory is the local memory reserved for non-remotable
	// structures, in bytes.
	PinnedMemory uint64
	// RemotableMemory is the local cache over the far tier, in bytes.
	RemotableMemory uint64
	// WriteBackMemory bounds the staging buffers holding dirty evictions
	// whose asynchronous write-backs are still in flight, in bytes. 0
	// means a quarter of RemotableMemory. Only meaningful when the far
	// tier supports batched writes (DESIGN.md §9).
	WriteBackMemory uint64
	// RemoteAddr, when non-empty, backs far memory with a cardsd server
	// at that TCP address instead of the in-process store.
	RemoteAddr string
	// RemoteAddrs backs far memory with N cardsd shards: objects are
	// placed across the servers by rendezvous hashing (pointer-chasing
	// structures pin whole to one shard, flat pools stripe), each shard
	// gets its own pipelined connection and circuit breaker, and one
	// dead server degrades only the objects it owns. A single address
	// here is equivalent to RemoteAddr. Setting both is an error.
	RemoteAddrs []string
	// Replicas, when > 1, turns the multi-backend far tier into a
	// replicated store: each object's shard maps onto a group of R
	// backends (the top R of the same rendezvous ranking the sharded
	// store uses), every write fans out to the whole group with a
	// monotonically increasing epoch stamp, and reads fail over to the
	// highest-epoch surviving replica when a backend dies. A backend
	// returning from an outage is resynced in the background before it
	// serves reads again. Requires at least Replicas addresses in
	// RemoteAddrs and servers that speak the epoch feature.
	Replicas int
	// WriteQuorum is the number of replica acks a write needs before it
	// is reported durable; 0 means 1 (writes ride out R-1 dead
	// backends). Only meaningful with Replicas > 1.
	WriteQuorum int

	// RemoteTimeout bounds each far-tier round trip; on expiry the
	// connection is abandoned and redialed. 0 means 2s; negative
	// disables deadlines.
	RemoteTimeout time.Duration
	// RemoteRetries is how many times an idempotent far-tier operation
	// is retried (with backoff and automatic reconnect) before the error
	// reaches the runtime. 0 means 6; negative disables retries.
	RemoteRetries int
	// BreakerThreshold arms the runtime's circuit breaker: after this
	// many consecutive far-tier failures it degrades to local memory,
	// pinning the working set and probing for recovery in the
	// background. With RemoteAddrs the same threshold also arms each
	// shard's private breaker. 0 means 8; negative disables the
	// breakers. Only meaningful with RemoteAddr/RemoteAddrs set.
	BreakerThreshold int

	// Compression controls adaptive per-object compression on the
	// compact wire tier (negotiated with the server; legacy servers are
	// unaffected): "" or "adaptive" compresses objects whose observed
	// compressibility pays for the CPU, sampling incompressible
	// structures only occasionally; "off" ships every object raw.
	Compression string
	// DirtyRangeWriteback ships only the modified byte ranges of a dirty
	// object at eviction when the far tier speaks the compact range
	// verb: the runtime tracks a per-object dirty rectangle from the
	// write guards and the server splices the extents into its stored
	// image. Falls back to full-object write-backs transparently (legacy
	// servers, wide rectangles, unknown coverage). Only meaningful with
	// RemoteAddr/RemoteAddrs set.
	DirtyRangeWriteback bool

	// Trace enables cross-process distributed tracing. Span contexts
	// ride the wire on every pipelined frame (negotiated with the
	// server; legacy servers fall back transparently), the server stamps
	// each reply with its receive/dispatch/complete times, and every
	// remote operation is decomposed into clock-offset-free client-queue
	// / wire / server-queue / server-service components feeding the
	// cards_attrib_* metric series. Head-sampled span trees accumulate
	// in an in-process ring (WriteChromeTrace); the slowest ops of the
	// last two 10s windows are always retained by the flight recorder
	// (DebugHandler's /debug/slow), however sampling falls.
	Trace bool
	// TraceTarget caps head sampling at about this many sampled root
	// traces per second; 0 means 500. Negative samples every root — for
	// tests and bounded smoke runs only. Ignored unless Trace is set.
	TraceTarget float64
}

// policyStore is the placement surface shared by the sharded and
// replicated multi-backend stores.
type policyStore interface {
	SetPolicy(ds int, p shardmap.Policy)
}

// Runtime is a far-memory runtime instance.
type Runtime struct {
	rt       *farmem.Runtime
	client   remote.StoreConn
	policies policyStore         // non-nil in multi-backend mode
	tracer   *obs.Tracer         // non-nil iff Config.Trace
	recorder *obs.FlightRecorder // non-nil iff Config.Trace
	nextID   int
}

// New creates a runtime. With Config{} all memory budgets are zero, so
// pass real budgets for anything beyond toy use.
//
// With RemoteAddr set, the connection is pipelined when the server
// supports tagged batches (prefetches then overlap: a whole lookahead
// window rides one doorbell), falling back to the serial protocol
// against legacy servers.
func New(cfg Config) (*Runtime, error) {
	fc := farmem.Config{
		PinnedBudget:    cfg.PinnedMemory,
		RemotableBudget: cfg.RemotableMemory,
		WriteBackBudget: cfg.WriteBackMemory,
	}
	var (
		tracer   *obs.Tracer
		recorder *obs.FlightRecorder
		hub      *obs.TraceHub
		reg      *obs.Registry
	)
	if cfg.Trace {
		// One ring and one registry shared by every layer: the runtime's
		// virtual-time spans, the transport's wall-clock spans and the
		// server-stamped components all land in the same export, linked
		// by trace ID.
		tracer = obs.NewTracer(0)
		recorder = obs.NewFlightRecorder(0, 0)
		target := cfg.TraceTarget
		if target < 0 {
			target = obs.SampleAll
		}
		hub = obs.NewTraceHub(tracer, recorder, target)
		reg = obs.NewRegistry()
		fc.Tracer = tracer
		fc.TraceHub = hub
		fc.Obs = reg
	}
	addrs := cfg.RemoteAddrs
	if cfg.RemoteAddr != "" {
		if len(addrs) > 0 {
			return nil, fmt.Errorf("cards: set RemoteAddr or RemoteAddrs, not both")
		}
		addrs = []string{cfg.RemoteAddr}
	}
	var client remote.StoreConn
	var policies policyStore
	if cfg.Replicas > 1 && len(addrs) < cfg.Replicas {
		return nil, fmt.Errorf("cards: Replicas=%d needs at least that many RemoteAddrs (have %d)",
			cfg.Replicas, len(addrs))
	}
	if len(addrs) > 0 {
		timeout := cfg.RemoteTimeout
		if timeout == 0 {
			timeout = 2 * time.Second
		} else if timeout < 0 {
			timeout = 0
		}
		retries := cfg.RemoteRetries
		if retries == 0 {
			retries = 6
		} else if retries < 0 {
			retries = 0
		}
		threshold := cfg.BreakerThreshold
		if threshold == 0 {
			threshold = 8
		} else if threshold < 0 {
			threshold = 0
		}
		dcfg := remote.DialConfig{
			Timeout: timeout, RetryMax: retries, Obs: reg, Trace: hub,
			Compression: cfg.Compression,
		}
		fc.RangeWriteback = cfg.DirtyRangeWriteback
		if len(addrs) == 1 {
			// The resilient dialer replaces a client whose reconnect budget
			// ran out during a long outage, so a restarted server resumes
			// remoting without restarting this process (the breaker's Ping
			// probes trigger the replacement dial).
			c, err := remote.DialResilient(addrs[0], dcfg)
			if err != nil {
				return nil, fmt.Errorf("cards: connecting far tier: %w", err)
			}
			if err := c.Ping(); err != nil {
				c.Close()
				return nil, fmt.Errorf("cards: far tier not responding: %w", err)
			}
			fc.Store = c
			client = c
		} else {
			// Multi-backend mode: every shard gets its own resilient
			// pipelined connection, and the sharded store adds per-shard
			// breakers on top so one dead server degrades only its keys.
			// All shards must answer at construction — a fleet that starts
			// degraded is a deployment error, not an outage.
			if reg == nil {
				reg = obs.NewRegistry()
			}
			backends := make([]farmem.Store, 0, len(addrs))
			closeAll := func() {
				for _, b := range backends {
					b.(*remote.Resilient).Close()
				}
			}
			for i, addr := range addrs {
				scfg := dcfg
				scfg.Obs = reg
				// Label each shard's attribution series and slow-op
				// records with its index.
				scfg.Shard = strconv.Itoa(i)
				c, err := remote.DialResilient(addr, scfg)
				if err != nil {
					closeAll()
					return nil, fmt.Errorf("cards: connecting far-tier shard %s: %w", addr, err)
				}
				if err := c.Ping(); err != nil {
					c.Close()
					closeAll()
					return nil, fmt.Errorf("cards: far-tier shard %s not responding: %w", addr, err)
				}
				backends = append(backends, c)
			}
			if cfg.Replicas > 1 {
				rs, err := replica.New(backends, replica.Options{
					Replicas:         cfg.Replicas,
					WriteQuorum:      cfg.WriteQuorum,
					BreakerThreshold: threshold,
					Obs:              reg,
					Trace:            hub,
				})
				if err != nil {
					closeAll()
					return nil, fmt.Errorf("cards: far-tier replica groups: %w", err)
				}
				fc.Store = rs
				fc.Obs = reg
				client = rs
				policies = rs
			} else {
				ss, err := shardmap.NewSharded(backends, shardmap.Options{
					BreakerThreshold: threshold,
					Obs:              reg,
				})
				if err != nil {
					closeAll()
					return nil, fmt.Errorf("cards: far-tier shards: %w", err)
				}
				fc.Store = ss
				fc.Obs = reg // runtime + per-shard series in one registry
				client = ss
				policies = ss
			}
		}
		// The transport never silently retries an unacknowledged write
		// (it cannot know whether the server applied it); the runtime
		// reissues instead — full-object write-backs are idempotent.
		fc.RetryMax = retries
		fc.BreakerThreshold = threshold
	}
	return &Runtime{
		rt:       farmem.New(fc),
		client:   client,
		policies: policies,
		tracer:   tracer,
		recorder: recorder,
	}, nil
}

// Close stops the runtime's background work (the breaker's recovery
// prober) and releases the far-tier connection, if any.
func (r *Runtime) Close() error {
	r.rt.Close()
	if r.client != nil {
		return r.client.Close()
	}
	return nil
}

// Stats is a snapshot of runtime activity.
type Stats struct {
	GuardChecks   uint64
	RemoteFetches uint64
	Evictions     uint64
	// VirtualSeconds is elapsed simulated time at the paper's 2.4 GHz.
	VirtualSeconds float64
}

// Stats returns current global counters.
func (r *Runtime) Stats() Stats {
	s := r.rt.Stats()
	return Stats{
		GuardChecks:    s.GuardChecks,
		RemoteFetches:  s.RemoteFetches,
		Evictions:      s.Evictions,
		VirtualSeconds: netsim.Seconds(r.rt.Clock().Now(), netsim.DefaultHz),
	}
}

// DSStats is a per-structure counter snapshot.
type DSStats struct {
	Hits, Misses, Evictions      uint64
	PrefetchIssued, PrefetchHits uint64
}

// dsHandle is the shared plumbing of the container types.
type dsHandle struct {
	r  *Runtime
	d  *farmem.DS
	id int
}

// Stats returns the structure's counters.
func (h *dsHandle) Stats() DSStats {
	s := h.d.Stats()
	return DSStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		PrefetchIssued: s.PrefetchIssued, PrefetchHits: s.PrefetchHits,
	}
}

// Local reports whether the structure has never been remoted.
func (h *dsHandle) Local() bool { return h.d.Local() }

// register creates a DS with the given hints and placement.
func (r *Runtime) register(name string, pattern Pattern, placement Placement,
	objSize, elemSize int, ptrOffs []int, recursive bool) (*dsHandle, error) {
	id := r.nextID
	meta := farmem.DSMeta{
		Name:       name,
		ObjSize:    objSize,
		ElemSize:   elemSize,
		Pattern:    pattern.farmem(),
		Recursive:  recursive,
		PtrOffsets: ptrOffs,
	}
	d, err := r.rt.RegisterDS(id, meta)
	if err != nil {
		return nil, err
	}
	r.nextID++
	if err := r.rt.SetPlacement(id, placement.farmem()); err != nil {
		return nil, err
	}
	if r.policies != nil {
		// Shard placement follows the access-pattern hint: structures
		// whose prefetch batches follow pointers pin to one backend (or
		// one replica group), flat pools stripe for aggregate bandwidth.
		r.policies.SetPolicy(id, shardmap.PolicyFor(recursive, meta.Pattern == farmem.PatternPointerChase))
	}
	if pf := prefetch.Select(prefetch.Hints{
		Pattern:    meta.Pattern,
		Recursive:  recursive,
		ElemSize:   elemSize,
		PtrOffsets: ptrOffs,
		ObjSize:    meta.ObjSize,
	}); pf != nil {
		if err := r.rt.SetPrefetcher(id, pf); err != nil {
			return nil, err
		}
	}
	return &dsHandle{r: r, d: d, id: id}, nil
}

// Trace streams every far-memory event (fetches, evictions, prefetches,
// spills) of this runtime to w, one line per event. Pass nil to stop
// tracing. Useful when deciding placements: the trace shows exactly
// which structure thrashes.
func (r *Runtime) Trace(w io.Writer) {
	if w == nil {
		r.rt.SetEventHook(nil)
		return
	}
	r.rt.SetEventHook(farmem.TraceWriter(w))
}

// WriteMetrics writes a point-in-time JSON snapshot of every runtime
// metric — the per-structure counters, latency histograms, and occupancy
// gauges the Report table is rendered from.
func (r *Runtime) WriteMetrics(w io.Writer) error {
	return r.rt.ObsSnapshot().WriteJSON(w)
}

// WritePrometheus writes the same snapshot in the Prometheus text
// exposition format (the shape cardsd serves on /metrics).
func (r *Runtime) WritePrometheus(w io.Writer) error {
	return r.rt.ObsSnapshot().WritePrometheus(w)
}

// WriteChromeTrace writes the sampled span trees — runtime events,
// transport spans and server-stamped queue/service components, linked
// per operation by args.trace — as Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto. Requires Config.Trace.
func (r *Runtime) WriteChromeTrace(w io.Writer) error {
	if r.tracer == nil {
		return fmt.Errorf("cards: tracing is not enabled (set Config.Trace)")
	}
	return r.tracer.WriteChromeTrace(w)
}

// SlowOps returns the flight recorder's current retention — the
// slowest remote operations of the last two windows, slowest first,
// each with its latency decomposition and attempt count. Empty unless
// Config.Trace is set and a remote tier is attached.
func (r *Runtime) SlowOps() []SlowOp {
	ops := r.recorder.Snapshot()
	out := make([]SlowOp, len(ops))
	for i, op := range ops {
		out[i] = SlowOp(op)
	}
	return out
}

// SlowOp is one retained slow-operation record. All duration fields
// are microseconds; ClientQueueUS + WireUS + ServerQueueUS +
// ServerServiceUS == TotalUS by construction, and Attempts > 1 marks
// ops retried or replayed across reconnects.
type SlowOp = obs.SlowOp

// DebugHandler returns the HTTP introspection handler the cmd/ binaries
// mount: /metrics (Prometheus text), /stats (JSON), /debug/slow (the
// flight recorder's span trees) and /debug/pprof/*. Safe without
// Config.Trace — /debug/slow then reports an empty recorder.
func (r *Runtime) DebugHandler() http.Handler {
	return obs.DebugHandler(r.rt.ObsSnapshot, r.recorder)
}
