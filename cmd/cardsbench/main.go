// Command cardsbench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 4–9) on the reproduction stack, plus the
// beyond-the-paper experiments (ablations, network sweep, and the
// pipeline-depth sweep of the real TCP data path).
//
// Usage:
//
//	cardsbench [-exp all|table1|fig4|fig5|fig6|fig7|fig8|fig9|pipeline|...]
//	           [-scale quick|default] [-markdown] [-seed N]
//	           [-metrics-out metrics.json] [-trace-out trace.json]
//	           [-debug-addr :9091]
//
// -metrics-out writes the shared metric registry every run published
// into (JSON snapshot; a .prom suffix selects the Prometheus text
// exposition instead). -trace-out writes the runs' event ring as Chrome
// trace_event JSON, loadable in chrome://tracing or Perfetto.
//
// Absolute numbers come from the deterministic virtual-time model
// calibrated to the paper's testbed (see DESIGN.md); the comparisons —
// which policy wins, by what factor, where the crossovers sit — are the
// reproduction targets recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"cards/internal/bench"
	"cards/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, table1, fig4..fig9, pipeline, ...)")
	scale := flag.String("scale", "quick", "workload scale: quick or default")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	jsonOut := flag.Bool("json", false, "emit JSON")
	seed := flag.Int64("seed", 0, "override the experiment seed (0 = keep)")
	chaos := flag.String("chaos", "", "run the pipeline sweep through a fault proxy with this schedule, e.g. cut=65536,corrupt=0.01,seed=7")
	metricsOut := flag.String("metrics-out", "", "write the final metric snapshot to this file (JSON; .prom suffix: Prometheus text)")
	traceOut := flag.String("trace-out", "", "write runtime events as Chrome trace JSON to this file")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /stats and /debug/pprof/* on this address while experiments run")
	flag.Parse()

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.Quick()
	case "default":
		cfg = bench.Default()
	default:
		fmt.Fprintf(os.Stderr, "cardsbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Chaos = *chaos
	if *metricsOut != "" || *debugAddr != "" {
		cfg.Obs = obs.NewRegistry()
	}
	if *traceOut != "" {
		cfg.Tracer = obs.NewTracer(0)
	}
	if *debugAddr != "" {
		// Live introspection while the sweeps run — most usefully the
		// pprof profiles, for attributing where a regression's CPU goes.
		ln := *debugAddr
		go func() {
			if err := http.ListenAndServe(ln, obs.DebugHandler(cfg.Obs.Snapshot, nil)); err != nil {
				fmt.Fprintf(os.Stderr, "cardsbench: debug server: %v\n", err)
			}
		}()
	}
	// flush writes the observability exports once every experiment ran.
	flush := func() {
		if cfg.Obs != nil && *metricsOut != "" {
			if err := writeSnapshot(*metricsOut, cfg.Obs.Snapshot()); err != nil {
				fmt.Fprintf(os.Stderr, "cardsbench: %v\n", err)
				os.Exit(1)
			}
		}
		if cfg.Tracer != nil {
			if err := writeTrace(*traceOut, cfg.Tracer); err != nil {
				fmt.Fprintf(os.Stderr, "cardsbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "cardsbench: wrote %d trace events (%d dropped) to %s\n",
				cfg.Tracer.Len(), cfg.Tracer.Drops(), *traceOut)
		}
	}

	emit := func(t *bench.Table) {
		switch {
		case *jsonOut:
			if err := t.JSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "cardsbench: %v\n", err)
				os.Exit(1)
			}
		case *markdown:
			t.Markdown(os.Stdout)
		default:
			t.Fprint(os.Stdout)
		}
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			t, err := e.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cardsbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			emit(t)
		}
		flush()
		return
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "cardsbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	t, err := e.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cardsbench: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
	emit(t)
	flush()
}

// writeSnapshot exports the snapshot to path — Prometheus text when the
// file name ends in .prom, JSON otherwise.
func writeSnapshot(path string, snap *obs.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".prom") {
		err = snap.WritePrometheus(f)
	} else {
		err = snap.WriteJSON(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace exports the ring as Chrome trace_event JSON.
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
