// Command cardsbench regenerates the paper's evaluation tables and
// figures (Table 1, Figures 4–9) on the reproduction stack.
//
// Usage:
//
//	cardsbench [-exp all|table1|fig4|fig5|fig6|fig7|fig8|fig9]
//	           [-scale quick|default] [-markdown] [-seed N]
//
// Absolute numbers come from the deterministic virtual-time model
// calibrated to the paper's testbed (see DESIGN.md); the comparisons —
// which policy wins, by what factor, where the crossovers sit — are the
// reproduction targets recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"cards/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, table1, fig4..fig9)")
	scale := flag.String("scale", "quick", "workload scale: quick or default")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown")
	jsonOut := flag.Bool("json", false, "emit JSON")
	seed := flag.Int64("seed", 0, "override the experiment seed (0 = keep)")
	flag.Parse()

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.Quick()
	case "default":
		cfg = bench.Default()
	default:
		fmt.Fprintf(os.Stderr, "cardsbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	emit := func(t *bench.Table) {
		switch {
		case *jsonOut:
			if err := t.JSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "cardsbench: %v\n", err)
				os.Exit(1)
			}
		case *markdown:
			t.Markdown(os.Stdout)
		default:
			t.Fprint(os.Stdout)
		}
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			t, err := e.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cardsbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			emit(t)
		}
		return
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "cardsbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	t, err := e.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cardsbench: %s: %v\n", e.ID, err)
		os.Exit(1)
	}
	emit(t)
}
