// Command cardsc is the CaRDS compiler driver: it runs the full pass
// pipeline (DSA → pool allocation → prefetch analysis → guards/code
// versioning) over one of the built-in benchmark programs and reports
// what the compiler discovered — the data structure inventory with
// patterns and policy scores, the pool-allocation rewrites, and the
// instrumentation statistics. With -dump-ir it also prints the
// transformed program.
//
// Usage:
//
//	cardsc -prog listing1|analytics|ftfdapml|bfs|sum_array|sum_vector|
//	             sum_list|sum_map|sum_tree
//	       [-scale N] [-dump-ir] [-run]
//	cardsc -in program.ir [-dump-ir] [-run]
//
// With -in, the program is read in the textual IR syntax (see
// internal/ir.Parse and examples/quickstart.ir). With -run, the compiled
// program is also executed on a default runtime and its result printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cards/internal/core"
	"cards/internal/farmem"
	"cards/internal/interp"
	"cards/internal/ir"
	"cards/internal/netsim"
	"cards/internal/obs"
	"cards/internal/policy"
	"cards/internal/remote"
	"cards/internal/replica"
	"cards/internal/shardmap"
	"cards/internal/workloads"
)

func buildProgram(name string, scale int64) (*ir.Module, error) {
	switch name {
	case "listing1":
		return ir.BuildListing1(scale*512, 8), nil
	case "analytics":
		return workloads.BuildTaxi(workloads.TaxiConfig{
			Trips: scale * 512, HotPasses: 4, Seed: 2014}).Module, nil
	case "ftfdapml":
		return workloads.BuildFDTD(workloads.FDTDConfig{N: 4 + scale*2, Steps: 2}).Module, nil
	case "bfs":
		return workloads.BuildBFS(workloads.BFSConfig{
			Vertices: scale * 256, Degree: 8, Trials: 2, Seed: 27}).Module, nil
	}
	if strings.HasPrefix(name, "sum_") {
		w, err := workloads.BuildChase(strings.TrimPrefix(name, "sum_"),
			workloads.ChaseConfig{N: scale * 256, Seed: 9})
		if err != nil {
			return nil, err
		}
		return w.Module, nil
	}
	return nil, fmt.Errorf("unknown program %q", name)
}

func main() {
	prog := flag.String("prog", "listing1", "built-in program to compile")
	in := flag.String("in", "", "read a program in textual IR from this file")
	scale := flag.Int64("scale", 2, "workload scale factor")
	dumpIR := flag.Bool("dump-ir", false, "print the transformed IR")
	dumpDSA := flag.Bool("dump-dsa", false, "print the data structure analysis graphs (Figure 2 view)")
	traceRun := flag.Bool("trace", false, "with -run: stream far-memory events to stderr")
	traceOut := flag.String("trace-out", "", "write a Chrome trace (per-pass compile spans; with -run also runtime events) to this file")
	report := flag.Bool("report", false, "with -run: print the per-structure runtime report")
	optimize := flag.Bool("O", false, "run the scalar optimizer before the CaRDS passes")
	run := flag.Bool("run", false, "execute the compiled program (linear policy)")
	pinnedKiB := flag.Uint64("pinned", 4096, "pinned local memory for -run, KiB")
	cacheKiB := flag.Uint64("cache", 512, "remotable local memory for -run, KiB")
	retryMax := flag.Int("retry-max", 0, "with -run: reissue failed far-tier operations up to N times")
	breakerThreshold := flag.Int("breaker-threshold", 0, "with -run: trip the circuit breaker (degrade to local memory) after N consecutive far-tier failures (0 = off)")
	remoteAddrs := flag.String("remote", "", "with -run: back far memory with cardsd server(s) at these comma-separated addresses; 2+ addresses shard objects across the fleet (pointer-chasing structures pin to one shard, flat pools stripe)")
	replicas := flag.Int("replicas", 1, "with -run and 2+ -remote addresses: replicate each object across R backends with epoch-stamped writes and read failover")
	flag.Parse()

	var m *ir.Module
	var err error
	if *in != "" {
		src, rerr := os.ReadFile(*in)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "cardsc: %v\n", rerr)
			os.Exit(2)
		}
		m, err = ir.Parse(string(src))
	} else {
		m, err = buildProgram(*prog, *scale)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cardsc: %v\n", err)
		os.Exit(2)
	}

	var tracer *obs.Tracer
	var hub *obs.TraceHub
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
		if *remoteAddrs != "" && *run {
			// Real far tier + trace export: turn on distributed tracing,
			// so the written trace carries the wire and server-stamped
			// spans alongside the runtime's events, linked by trace ID.
			// A compile-and-run is a bounded batch, so sample every root.
			hub = obs.NewTraceHub(tracer, obs.NewFlightRecorder(0, 0), obs.SampleAll)
		}
	}

	c, err := core.Compile(m, core.CompileOptions{Optimize: *optimize, Tracer: tracer})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cardsc: compile: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("program: %s (%d functions)\n", m.Name, len(m.Funcs))
	fmt.Printf("pool allocation: %d static handles, %d dynamic handles\n",
		c.Pool.StaticHandles, c.Pool.DynamicHandles)
	fmt.Printf("guards: %d inserted, %d elided (redundant), %d loops versioned\n\n",
		c.Guards.GuardsInserted, c.Guards.GuardsElided, c.Guards.LoopsVersioned)

	fmt.Printf("%-4s %-34s %-14s %8s %6s %6s %8s\n",
		"id", "data structure", "pattern", "objsize", "use", "reach", "recursive")
	for _, info := range c.Analysis.Infos {
		fmt.Printf("%-4d %-34s %-14s %8d %6d %6d %8v\n",
			info.DS.ID, info.DS.Name(), info.Pattern, info.ObjSize,
			info.UseScore, info.ReachScore, info.DS.Recursive)
	}

	if *dumpDSA {
		fmt.Println()
		c.DSA.Dump(os.Stdout)
	}

	if *dumpIR {
		fmt.Println()
		fmt.Print(m.String())
	}

	if *run {
		rc := core.RunConfig{
			Policy:           policy.Linear,
			K:                100,
			PinnedBudget:     *pinnedKiB << 10,
			RemotableBudget:  *cacheKiB << 10,
			Tracer:           tracer,
			TraceHub:         hub,
			RetryMax:         *retryMax,
			BreakerThreshold: *breakerThreshold,
		}
		if *remoteAddrs != "" {
			store, closeStore, serr := dialRemote(*remoteAddrs, *retryMax, *breakerThreshold, *replicas, hub)
			if serr != nil {
				fmt.Fprintf(os.Stderr, "cardsc: %v\n", serr)
				os.Exit(1)
			}
			defer closeStore()
			rc.Store = store
		}
		var res *core.RunResult
		if *traceRun || *report {
			res, err = runInstrumented(c, rc, *traceRun, *report)
		} else {
			res, err = c.Run(rc)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cardsc: run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nrun: %.4f virtual s, main returned %d (%#x)\n",
			res.Seconds, int64(res.MainResult), res.MainResult)
		fmt.Printf("     guards=%d remote fetches=%d evictions=%d\n",
			res.Runtime.GuardChecks, res.Runtime.RemoteFetches, res.Runtime.Evictions)
	}

	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "cardsc: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cardsc: wrote %d trace events to %s (load in chrome://tracing)\n",
			tracer.Len(), *traceOut)
	}
}

// dialRemote connects the far tier for -run: one address yields a
// resilient pipelined client, several yield a sharded store with one
// client and one breaker per backend — or, with replicas > 1, a
// replicated store fanning each object across R backends.
func dialRemote(addrs string, retryMax, breakerThreshold, replicas int, hub *obs.TraceHub) (farmem.Store, func(), error) {
	list := strings.Split(addrs, ",")
	for i := range list {
		list[i] = strings.TrimSpace(list[i])
	}
	if retryMax <= 0 {
		retryMax = 6
	}
	dcfg := remote.DialConfig{Timeout: 2 * time.Second, RetryMax: retryMax, Trace: hub}
	backends := make([]farmem.Store, 0, len(list))
	closeAll := func() {
		for _, b := range backends {
			b.(*remote.Resilient).Close()
		}
	}
	for i, addr := range list {
		scfg := dcfg
		if len(list) > 1 {
			scfg.Shard = strconv.Itoa(i)
		}
		c, err := remote.DialResilient(addr, scfg)
		if err == nil {
			err = c.Ping()
		}
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("far-tier shard %s: %w", addr, err)
		}
		backends = append(backends, c)
	}
	if len(backends) == 1 {
		if replicas > 1 {
			closeAll()
			return nil, nil, fmt.Errorf("-replicas=%d needs at least that many -remote addresses", replicas)
		}
		b := backends[0]
		return b, func() { b.(*remote.Resilient).Close() }, nil
	}
	if replicas > 1 {
		rs, err := replica.New(backends, replica.Options{
			Replicas:         replicas,
			BreakerThreshold: breakerThreshold,
			Trace:            hub,
		})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		return rs, func() { rs.Close() }, nil
	}
	ss, err := shardmap.NewSharded(backends, shardmap.Options{BreakerThreshold: breakerThreshold})
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	return ss, func() { ss.Close() }, nil
}

// writeTrace dumps the ring as Chrome trace_event JSON.
func writeTrace(path string, t *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runInstrumented executes the compiled program on a runtime with
// optional event tracing (to stderr) and a final per-structure report
// (to stdout).
func runInstrumented(c *core.Compiled, rc core.RunConfig, trace, report bool) (*core.RunResult, error) {
	rt, _, err := c.NewRuntime(rc)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	if trace {
		rt.SetEventHook(farmem.TraceWriter(os.Stderr))
	}
	mach, err := interp.New(c.Module, rt, interp.Options{})
	if err != nil {
		return nil, err
	}
	mainRes, err := mach.Run()
	if err != nil {
		return nil, err
	}
	if report {
		fmt.Println()
		rt.Report(os.Stdout)
	}
	return &core.RunResult{
		Cycles:     rt.Clock().Now(),
		Seconds:    netsim.Seconds(rt.Clock().Now(), netsim.DefaultHz),
		Runtime:    rt.Stats(),
		MainResult: mainRes,
	}, nil
}
