// Command cardsd is the remote memory node: it owns the far tier of
// objects and serves the CaRDS wire protocol — serial READ/WRITE verbs
// over length-prefixed TCP frames, plus the tagged pipelined verbs
// (READBATCH scatter-gather reads, tagged writes) negotiated on PING.
// Point a runtime at it with
// cards.Config{RemoteAddr: ...} or run examples/cluster against it —
// this is the "memory server machine" of the paper's two-node CloudLab
// setup.
//
// With -metrics-addr the node also serves live introspection over HTTP:
// GET /metrics returns the Prometheus text exposition of the server's
// registry (verb latency histograms, wire bytes, connection and
// in-flight gauges); GET /stats the same snapshot as JSON. On shutdown
// (SIGINT/SIGTERM) the final snapshot is dumped to stderr.
//
// Usage:
//
//	cardsd [-listen 127.0.0.1:7770] [-metrics-addr :9090] [-batch-workers 4] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cards/internal/obs"
	"cards/internal/remote"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7770", "address to serve on")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text) and /stats (JSON) on this address")
	batchWorkers := flag.Int("batch-workers", remote.DefaultBatchWorkers,
		"concurrent READBATCH handlers per connection (replies may be reordered)")
	verbose := flag.Bool("v", false, "log periodic statistics")
	flag.Parse()

	srv := remote.NewServer()
	srv.BatchWorkers = *batchWorkers
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cardsd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("cardsd: serving far memory on %s", addr)

	if *metricsAddr != "" {
		ln := *metricsAddr
		go func() {
			log.Printf("cardsd: metrics on http://%s/metrics (JSON on /stats)", ln)
			if err := http.ListenAndServe(ln, obs.Handler(srv.ObsSnapshot)); err != nil {
				log.Printf("cardsd: metrics server: %v", err)
			}
		}()
	}

	done := make(chan struct{})
	if *verbose {
		go func() {
			tick := time.NewTicker(5 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					r, w := srv.Counts()
					log.Printf("cardsd: %d objects resident, %d reads, %d writes",
						srv.Store.Len(), r, w)
				case <-done:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(done)
	log.Printf("cardsd: shutting down")
	srv.Close()

	// Final point-in-time snapshot so a scrape-less run still leaves the
	// numbers behind.
	fmt.Fprintln(os.Stderr, "cardsd: final metrics snapshot:")
	srv.ObsSnapshot().WriteJSON(os.Stderr)
}
