// Command cardsd is the remote memory node: it owns the far tier of
// objects and serves the CaRDS wire protocol — serial READ/WRITE verbs
// over length-prefixed TCP frames, plus the tagged pipelined verbs
// (READBATCH scatter-gather reads, tagged writes) negotiated on PING,
// and the epoch-stamped variants (WRITEEPOCHBATCH / READEPOCHBATCH,
// feature bit FeatEpoch) the replicated client uses: writes carry a
// monotonically increasing per-object epoch and apply only when at
// least as new as the stored image, so replica resync and reissued
// write-backs are idempotent.
// Point a runtime at it with
// cards.Config{RemoteAddr: ...} or run examples/cluster against it —
// this is the "memory server machine" of the paper's two-node CloudLab
// setup.
//
// With -metrics-addr the node also serves live introspection over HTTP:
// GET /metrics returns the Prometheus text exposition of the server's
// registry (verb latency histograms, wire bytes, connection and
// in-flight gauges); GET /stats the same snapshot as JSON; GET
// /debug/pprof/* the standard net/http/pprof profiles. On shutdown
// (SIGINT/SIGTERM) the final snapshot is dumped to stderr.
//
// With -chaos every accepted connection is wrapped in the deterministic
// fault injector (internal/faultnet): forced disconnects, corrupted or
// truncated frames, added latency and stalls, per the given spec — the
// harness the fault-tolerant client path is exercised against. On
// SIGINT/SIGTERM the server drains gracefully: it stops accepting,
// waits up to -drain-timeout for in-flight requests, then force-closes
// stragglers.
//
// Usage:
//
//	cardsd [-listen 127.0.0.1:7770] [-metrics-addr :9090] [-batch-workers 4]
//	       [-chaos cut=65536,corrupt=0.01,seed=7] [-drain-timeout 5s] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"cards/internal/faultnet"
	"cards/internal/obs"
	"cards/internal/remote"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7770", "address to serve on")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /stats (JSON) and /debug/pprof/* on this address")
	batchWorkers := flag.Int("batch-workers", remote.DefaultBatchWorkers,
		"concurrent READBATCH handlers per connection (replies may be reordered)")
	chaos := flag.String("chaos", "", "inject faults on every connection, e.g. cut=65536,corrupt=0.01,seed=7 (see internal/faultnet)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown budget for in-flight requests")
	verbose := flag.Bool("v", false, "log periodic statistics")
	flag.Parse()

	srv := remote.NewServer()
	srv.BatchWorkers = *batchWorkers
	if *chaos != "" {
		cfg, err := faultnet.ParseSpec(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cardsd: -chaos: %v\n", err)
			os.Exit(2)
		}
		// Derive a distinct (but deterministic) schedule per connection,
		// so reconnects do not replay the identical fault sequence.
		var connSeq atomic.Int64
		srv.ConnWrap = func(c io.ReadWriteCloser) io.ReadWriteCloser {
			ccfg := cfg
			ccfg.Seed += connSeq.Add(1) - 1
			return faultnet.Wrap(c, ccfg)
		}
		log.Printf("cardsd: chaos injection enabled: %s", *chaos)
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cardsd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("cardsd: serving far memory on %s", addr)

	if *metricsAddr != "" {
		ln := *metricsAddr
		go func() {
			log.Printf("cardsd: metrics on http://%s/metrics (JSON on /stats, profiles on /debug/pprof/)", ln)
			if err := http.ListenAndServe(ln, obs.DebugHandler(srv.ObsSnapshot, nil)); err != nil {
				log.Printf("cardsd: metrics server: %v", err)
			}
		}()
	}

	done := make(chan struct{})
	if *verbose {
		go func() {
			tick := time.NewTicker(5 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					r, w := srv.Counts()
					log.Printf("cardsd: %d objects resident, %d reads, %d writes",
						srv.Store.Len(), r, w)
				case <-done:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(done)
	log.Printf("cardsd: draining (up to %s)", *drainTimeout)
	if srv.Drain(*drainTimeout) {
		log.Printf("cardsd: drained cleanly")
	} else {
		log.Printf("cardsd: drain timed out; connections force-closed")
	}

	// Final point-in-time snapshot so a scrape-less run still leaves the
	// numbers behind.
	fmt.Fprintln(os.Stderr, "cardsd: final metrics snapshot:")
	srv.ObsSnapshot().WriteJSON(os.Stderr)
}
