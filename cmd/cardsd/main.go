// Command cardsd is the remote memory node: it owns the far tier of
// objects and serves the CaRDS wire protocol (READ/WRITE verbs over
// length-prefixed TCP frames). Point a runtime at it with
// cards.Config{RemoteAddr: ...} or run examples/cluster against it —
// this is the "memory server machine" of the paper's two-node CloudLab
// setup.
//
// Usage:
//
//	cardsd [-listen 127.0.0.1:7770] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cards/internal/remote"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7770", "address to serve on")
	verbose := flag.Bool("v", false, "log periodic statistics")
	flag.Parse()

	srv := remote.NewServer()
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cardsd: %v\n", err)
		os.Exit(1)
	}
	log.Printf("cardsd: serving far memory on %s", addr)

	if *verbose {
		go func() {
			for range time.Tick(5 * time.Second) {
				r, w := srv.Counts()
				log.Printf("cardsd: %d objects resident, %d reads, %d writes",
					srv.Store.Len(), r, w)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("cardsd: shutting down")
	srv.Close()
}
