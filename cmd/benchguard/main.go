// Command benchguard is the CI regression gate for the real-socket data
// path: it reruns the pipeline-depth sweep, the dirty write-back sweep,
// the replicated-write sweep, the traversal-offload sweep and the
// wire-efficiency ladder and compares each guarded ratio against the
// checked-in baseline tables (BENCH_pipeline.json, BENCH_writeback.json,
// BENCH_replica.json, BENCH_chase.json, BENCH_wire.json). A fresh best
// ratio below threshold × baseline fails the build — the batched read
// path, the staged write-back path, the replicated fan-out's throughput
// retention over its in-run R=1 baseline, the offloaded pointer chase's
// speedup over dependent per-hop reads (pinned at hop budget 16), or the
// compact+compression+range tier's bytes-on-wire reduction over the
// legacy protocol (pinned at the analytics workload) has regressed.
//
// The guard compares *speedups over the in-run baseline row*, not
// absolute throughput: both sides of the ratio come from the same
// process on the same machine, so host speed cancels out and the
// checked-in numbers stay portable across CI hardware.
//
// The sweeps are wall-clock over real sockets, so a single run is
// noisy; the guard takes the best of -runs attempts, which tracks the
// machine's attainable speedup rather than one draw's scheduling luck.
// Pass or fail, it prints the per-row measured-vs-baseline delta table,
// so a green build still leaves the drift on record.
//
// Usage:
//
//	benchguard [-baseline BENCH_pipeline.json] [-threshold 0.85] [-runs 3]
//	           [-writeback-baseline BENCH_writeback.json] [-writeback-threshold 0.7]
//	           [-replica-baseline BENCH_replica.json] [-replica-threshold 0.6]
//	           [-chase-baseline BENCH_chase.json] [-chase-threshold 0.7]
//	           [-wire-baseline BENCH_wire.json] [-wire-threshold 0.8]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cards/internal/bench"
)

// table mirrors bench.Table's JSON payload.
type table struct {
	ID     string     `json:"id"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// gate is one guarded sweep: a checked-in baseline table, the fresh
// sweep that regenerates it, and the shape of its speedup column.
type gate struct {
	name      string
	baseline  string
	threshold float64
	ratioCol  string // header of the in-run speedup column
	rowKey    string // first column value of the accelerated rows
	rowKey2   string // optional second column value (pins one sweep point)
	run       func() (*bench.Table, error)
}

func main() {
	pipeBase := flag.String("baseline", "BENCH_pipeline.json", "checked-in pipeline sweep table")
	pipeThresh := flag.Float64("threshold", 0.85, "minimum fresh/baseline best-speedup ratio (pipeline)")
	wbBase := flag.String("writeback-baseline", "BENCH_writeback.json", "checked-in write-back sweep table (empty disables the gate)")
	wbThresh := flag.Float64("writeback-threshold", 0.7, "minimum fresh/baseline best-speedup ratio (write-back; looser, the sync denominator is one long RTT chain)")
	repBase := flag.String("replica-baseline", "BENCH_replica.json", "checked-in replication sweep table (empty disables the gate)")
	repThresh := flag.Float64("replica-threshold", 0.6, "minimum fresh/baseline throughput-retention ratio (replica R=2 row; loosest, two windows' scheduling noise)")
	chaseBase := flag.String("chase-baseline", "BENCH_chase.json", "checked-in traversal-offload sweep table (empty disables the gate)")
	chaseThresh := flag.Float64("chase-threshold", 0.7, "minimum fresh/baseline speedup ratio (chase offload, hop budget 16)")
	wireBase := flag.String("wire-baseline", "BENCH_wire.json", "checked-in wire-efficiency ladder table (empty disables the gate)")
	wireThresh := flag.Float64("wire-threshold", 0.8, "minimum fresh/baseline bytes-per-op reduction ratio (analytics, full ladder; byte counts are near-deterministic)")
	runs := flag.Int("runs", 3, "sweep attempts per gate; the best one is compared")
	flag.Parse()

	gates := []gate{{
		name:      "pipeline",
		baseline:  *pipeBase,
		threshold: *pipeThresh,
		ratioCol:  "vs serial",
		rowKey:    "pipelined",
		run:       func() (*bench.Table, error) { return bench.Pipeline(bench.Quick()) },
	}}
	if *wbBase != "" {
		gates = append(gates, gate{
			name:      "writeback",
			baseline:  *wbBase,
			threshold: *wbThresh,
			ratioCol:  "vs sync",
			rowKey:    "async",
			run:       func() (*bench.Table, error) { return bench.Writeback(bench.Quick()) },
		})
	}
	if *repBase != "" {
		gates = append(gates, gate{
			name:      "replica",
			baseline:  *repBase,
			threshold: *repThresh,
			ratioCol:  "vs R=1",
			rowKey:    "2",
			run:       func() (*bench.Table, error) { return bench.Replica(bench.Quick()) },
		})
	}
	if *chaseBase != "" {
		gates = append(gates, gate{
			name:      "chase",
			baseline:  *chaseBase,
			threshold: *chaseThresh,
			ratioCol:  "vs per-hop",
			rowKey:    "offload",
			rowKey2:   "16",
			run:       func() (*bench.Table, error) { return bench.Chase(bench.Quick()) },
		})
	}
	if *wireBase != "" {
		gates = append(gates, gate{
			name:      "wire",
			baseline:  *wireBase,
			threshold: *wireThresh,
			ratioCol:  "bytes vs legacy",
			rowKey:    "analytics",
			rowKey2:   "compact+lz+range",
			run:       func() (*bench.Table, error) { return bench.Wire(bench.Quick()) },
		})
	}

	failed := false
	for _, g := range gates {
		if !g.check(*runs) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// check runs one gate and reports whether it passed, printing the
// per-row delta table either way.
func (g gate) check(runs int) bool {
	data, err := os.ReadFile(g.baseline)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base table
	if err := json.Unmarshal(data, &base); err != nil {
		fatal("parse %s: %v", g.baseline, err)
	}
	want, err := bestSpeedup(base.Header, base.Rows, g.ratioCol, g.rowKey, g.rowKey2)
	if err != nil {
		fatal("%s: %v", g.baseline, err)
	}

	got := 0.0
	var bestRun *bench.Table
	for i := 0; i < runs; i++ {
		fresh, err := g.run()
		if err != nil {
			fatal("%s sweep: %v", g.name, err)
		}
		v, err := bestSpeedup(fresh.Header, fresh.Rows, g.ratioCol, g.rowKey, g.rowKey2)
		if err != nil {
			fatal("fresh %s sweep: %v", g.name, err)
		}
		if v > got {
			got, bestRun = v, fresh
		}
	}

	printDelta(g, base, bestRun)
	fmt.Printf("benchguard: %s best speedup %.2fx fresh vs %.2fx baseline (floor %.2fx)\n",
		g.name, got, want, want*g.threshold)
	if got < want*g.threshold {
		fmt.Fprintf(os.Stderr, "benchguard: %s sweep regressed >%d%%: best speedup %.2fx, baseline %.2fx\n",
			g.name, int((1-g.threshold)*100), got, want)
		return false
	}
	return true
}

// printDelta renders the measured-vs-baseline speedup per sweep row,
// matched on the first two columns (client/mode + depth/batch).
func printDelta(g gate, base table, fresh *bench.Table) {
	col := colIndex(base.Header, g.ratioCol)
	fcol := colIndex(fresh.Header, g.ratioCol)
	if col < 0 || fcol < 0 {
		return
	}
	baseRatio := make(map[string]float64)
	for _, row := range base.Rows {
		if v, err := parseRatio(row[col]); err == nil {
			baseRatio[rowID(row)] = v
		}
	}
	fmt.Printf("benchguard: %s measured vs baseline (%s):\n", g.name, g.ratioCol)
	fmt.Printf("  %-12s %-8s %9s %9s %8s\n", fresh.Header[0], fresh.Header[1], "baseline", "measured", "delta")
	for _, row := range fresh.Rows {
		v, err := parseRatio(row[fcol])
		if err != nil {
			continue
		}
		b, ok := baseRatio[rowID(row)]
		if !ok || b == 0 {
			fmt.Printf("  %-12s %-8s %9s %8.2fx %8s\n", row[0], row[1], "-", v, "-")
			continue
		}
		fmt.Printf("  %-12s %-8s %8.2fx %8.2fx %+7.1f%%\n", row[0], row[1], b, v, 100*(v/b-1))
	}
}

func rowID(row []string) string {
	if len(row) < 2 {
		return strings.Join(row, "|")
	}
	return row[0] + "|" + row[1]
}

func colIndex(header []string, name string) int {
	for i, h := range header {
		if h == name {
			return i
		}
	}
	return -1
}

func parseRatio(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
}

// bestSpeedup extracts the maximum ratioCol ratio over the rowKey rows
// of a sweep table; a non-empty rowKey2 further pins the second column
// so a gate can guard one sweep point instead of the sweep's best.
func bestSpeedup(header []string, rows [][]string, ratioCol, rowKey, rowKey2 string) (float64, error) {
	col := colIndex(header, ratioCol)
	if col < 0 {
		return 0, fmt.Errorf("no %q column", ratioCol)
	}
	best := 0.0
	for _, row := range rows {
		if len(row) <= col || row[0] != rowKey {
			continue
		}
		if rowKey2 != "" && (len(row) < 2 || row[1] != rowKey2) {
			continue
		}
		v, err := parseRatio(row[col])
		if err != nil {
			return 0, fmt.Errorf("bad ratio %q: %v", row[col], err)
		}
		if v > best {
			best = v
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("no %s rows", rowKey)
	}
	return best, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
