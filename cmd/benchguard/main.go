// Command benchguard is the CI regression gate for the real-socket data
// path: it reruns the pipeline-depth sweep and compares the best
// pipelined speedup against the checked-in baseline table
// (BENCH_pipeline.json). A fresh best-depth speedup below
// threshold × baseline fails the build — the batched read path has
// regressed relative to the serial client.
//
// The guard compares *speedups over the in-run serial baseline*, not
// absolute reads/s: both sides of the ratio come from the same process
// on the same machine, so host speed cancels out and the checked-in
// numbers stay portable across CI hardware.
//
// The sweep is wall-clock over real sockets, so a single run is noisy;
// the guard takes the best of -runs attempts, which tracks the machine's
// attainable speedup rather than one draw's scheduling luck.
//
// Usage:
//
//	benchguard [-baseline BENCH_pipeline.json] [-threshold 0.85] [-runs 3]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cards/internal/bench"
)

// table mirrors bench.Table's JSON payload.
type table struct {
	ID     string     `json:"id"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_pipeline.json", "checked-in pipeline sweep table")
	threshold := flag.Float64("threshold", 0.85, "minimum fresh/baseline best-speedup ratio")
	runs := flag.Int("runs", 3, "sweep attempts; the best one is compared")
	flag.Parse()

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base table
	if err := json.Unmarshal(data, &base); err != nil {
		fatal("parse %s: %v", *baseline, err)
	}
	want, err := bestSpeedup(base.Header, base.Rows)
	if err != nil {
		fatal("%s: %v", *baseline, err)
	}

	got := 0.0
	for i := 0; i < *runs; i++ {
		fresh, err := bench.Pipeline(bench.Quick())
		if err != nil {
			fatal("pipeline sweep: %v", err)
		}
		v, err := bestSpeedup(fresh.Header, fresh.Rows)
		if err != nil {
			fatal("fresh sweep: %v", err)
		}
		if v > got {
			got = v
		}
	}

	fmt.Printf("benchguard: pipeline best speedup %.2fx fresh vs %.2fx baseline (floor %.2fx)\n",
		got, want, want**threshold)
	if got < want**threshold {
		fatal("pipeline sweep regressed >%d%%: best speedup %.2fx, baseline %.2fx",
			int((1-*threshold)*100), got, want)
	}
}

// bestSpeedup extracts the maximum "vs serial" ratio over the pipelined
// rows of a sweep table.
func bestSpeedup(header []string, rows [][]string) (float64, error) {
	col := -1
	for i, h := range header {
		if h == "vs serial" {
			col = i
		}
	}
	if col < 0 {
		return 0, fmt.Errorf("no %q column", "vs serial")
	}
	best := 0.0
	for _, row := range rows {
		if len(row) <= col || row[0] != "pipelined" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "x"), 64)
		if err != nil {
			return 0, fmt.Errorf("bad ratio %q: %v", row[col], err)
		}
		if v > best {
			best = v
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("no pipelined rows")
	}
	return best, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
