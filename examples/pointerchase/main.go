// Pointerchase: why per-structure prefetchers matter (the Figure 9
// story) through the library API. The same values live in a remote
// array and a remote linked list; both are scanned with a local cache
// far smaller than the data. The array's stride prefetcher and the
// list's jump-pointer prefetcher each cover their structure's misses —
// the capability TrackFM's single induction-variable prefetcher lacks
// for linked structures.
package main

import (
	"fmt"
	"log"

	"cards"
)

const n = 64 * 1024

func run(build func(rt *cards.Runtime) (scan func() (int64, error), stats func() cards.DSStats)) (float64, int64, cards.DSStats) {
	rt, err := cards.New(cards.Config{RemotableMemory: 96 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	scan, stats := build(rt)
	sum, err := scan()
	if err != nil {
		log.Fatal(err)
	}
	return rt.Stats().VirtualSeconds, sum, stats()
}

func main() {
	fmt.Printf("scanning %d elements through a %d KiB cache\n\n", n, 96)

	arrTime, arrSum, arrStats := run(func(rt *cards.Runtime) (func() (int64, error), func() cards.DSStats) {
		a, err := cards.NewArray[int64](rt, "data", n, cards.Remotable)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := a.Set(i, int64(i)); err != nil {
				log.Fatal(err)
			}
		}
		return func() (int64, error) {
			var sum int64
			for i := 0; i < n; i++ {
				v, err := a.Get(i)
				if err != nil {
					return 0, err
				}
				sum += v
			}
			return sum, nil
		}, func() cards.DSStats { return a.Stats() }
	})

	listTime, listSum, listStats := run(func(rt *cards.Runtime) (func() (int64, error), func() cards.DSStats) {
		l, err := cards.NewList[int64](rt, "data", cards.Remotable)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := l.PushBack(int64(i)); err != nil {
				log.Fatal(err)
			}
		}
		return func() (int64, error) {
			var sum int64
			err := l.Each(func(v int64) bool { sum += v; return true })
			return sum, err
		}, func() cards.DSStats { return l.Stats() }
	})

	if arrSum != listSum {
		log.Fatalf("sums diverge: %d vs %d", arrSum, listSum)
	}
	fmt.Printf("array: %.4f virtual s   prefetch issued=%-6d hit=%-6d misses=%d\n",
		arrTime, arrStats.PrefetchIssued, arrStats.PrefetchHits, arrStats.Misses)
	fmt.Printf("list:  %.4f virtual s   prefetch issued=%-6d hit=%-6d misses=%d\n",
		listTime, listStats.PrefetchIssued, listStats.PrefetchHits, listStats.Misses)
	fmt.Printf("\nboth computed sum %d; prefetchers covered %.0f%% (array) and %.0f%% (list) of would-be misses\n",
		arrSum,
		100*float64(arrStats.PrefetchHits)/float64(arrStats.PrefetchHits+arrStats.Misses+1),
		100*float64(listStats.PrefetchHits)/float64(listStats.PrefetchHits+listStats.Misses+1))
}
