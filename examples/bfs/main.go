// BFS: the paper's irregular graph workload under shrinking local
// memory. A GAP-style BFS over a synthetic graph (19 disjoint data
// structures: edge lists, dual CSR, frontiers, visit state) is compiled
// by the CaRDS pipeline and run with the Linear policy — the paper's
// most robust policy for BFS (Figure 5) — while local memory shrinks
// from ample to starved.
package main

import (
	"fmt"
	"log"

	"cards/internal/core"
	"cards/internal/policy"
	"cards/internal/workloads"
)

func main() {
	cfg := workloads.BFSConfig{Vertices: 1 << 11, Degree: 8, Trials: 3, Seed: 27}
	ws := workloads.BuildBFS(cfg).WorkingSetBytes
	fmt.Printf("graph: %d vertices, degree %d, working set %d KiB\n\n",
		cfg.Vertices, cfg.Degree, ws/1024)

	var want uint64
	for _, frac := range []float64{1.5, 1.0, 0.75, 0.5, 0.25} {
		c, err := core.Compile(workloads.BuildBFS(cfg).Module, core.CompileOptions{})
		if err != nil {
			log.Fatal(err)
		}
		pinned := uint64(float64(ws) * frac)
		res, err := c.Run(core.RunConfig{
			Policy: policy.Linear, K: 100, Seed: 1,
			PinnedBudget:    pinned,
			RemotableBudget: ws / 5, // the paper's 256 MB : 1.2 GB ratio
		})
		if err != nil {
			log.Fatalf("local=%.0f%%: %v", frac*100, err)
		}
		if want == 0 {
			want = res.MainResult
		} else if res.MainResult != want {
			log.Fatalf("checksum diverged under pressure: %#x vs %#x", res.MainResult, want)
		}
		fmt.Printf("local %4.0f%%: %.4fs  remote fetches=%-6d evictions=%-6d spilled DS=%d\n",
			frac*100, res.Seconds, res.Runtime.RemoteFetches,
			res.Runtime.Evictions, res.Runtime.SpilledDS)
	}
	fmt.Printf("\nBFS results identical at every memory size (checksum %#x)\n", want)
}
