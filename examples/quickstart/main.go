// Quickstart: the cards library model in one page — create a runtime
// that splits local memory into pinned and remotable regions, put three
// data structures on it with different placements and access-pattern
// hints, and watch the per-structure statistics that drive CaRDS's
// policy decisions.
package main

import (
	"fmt"
	"log"

	"cards"
)

func main() {
	rt, err := cards.New(cards.Config{
		PinnedMemory:    256 << 10, // 256 KiB that never leaves this machine
		RemotableMemory: 64 << 10,  // 64 KiB local cache over far memory
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// A hot index that must stay local: pinned placement.
	index, err := cards.NewArray[int64](rt, "index", 1024, cards.Pinned)
	if err != nil {
		log.Fatal(err)
	}
	// A large, coldish log that may live remotely: remotable placement;
	// its strided hint installs the majority-stride prefetcher.
	events, err := cards.NewArray[int64](rt, "events", 64*1024, cards.Remotable)
	if err != nil {
		log.Fatal(err)
	}
	// A linked work queue: jump-pointer prefetching over remote nodes.
	queue, err := cards.NewList[int64](rt, "queue", cards.Remotable)
	if err != nil {
		log.Fatal(err)
	}

	// Fill the event log (writes materialize objects locally, then
	// eviction streams the cold tail out to the far tier).
	for i := 0; i < events.Len(); i++ {
		if err := events.Set(i, int64(i)%97); err != nil {
			log.Fatal(err)
		}
	}
	// Keep an index of every 64th event, pinned.
	for i := 0; i < index.Len(); i++ {
		v, err := events.Get(i * 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := index.Set(i, v); err != nil {
			log.Fatal(err)
		}
	}
	// Queue a few follow-ups and drain them.
	for i := int64(0); i < 500; i++ {
		if err := queue.PushBack(i * i); err != nil {
			log.Fatal(err)
		}
	}
	var sum int64
	if err := queue.Each(func(v int64) bool { sum += v; return true }); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("queue sum: %d (expect %d)\n", sum, int64(499*500*999)/6)
	fmt.Printf("index stays local: %v\n", index.Local())
	es := events.Stats()
	fmt.Printf("events: hits=%d misses=%d evictions=%d prefetch issued=%d hit=%d\n",
		es.Hits, es.Misses, es.Evictions, es.PrefetchIssued, es.PrefetchHits)
	qs := queue.Stats()
	fmt.Printf("queue:  hits=%d misses=%d prefetch issued=%d hit=%d\n",
		qs.Hits, qs.Misses, qs.PrefetchIssued, qs.PrefetchHits)
	g := rt.Stats()
	fmt.Printf("total: %d guard checks, %d remote fetches, %.4f virtual seconds\n",
		g.GuardChecks, g.RemoteFetches, g.VirtualSeconds)
}
