// Analytics: the compiler model end to end on the paper's data
// analytics workload. The program (a 15-column synthetic taxi-trip
// table plus its query aggregates — 22 disjoint data structures) is
// compiled by the full CaRDS pipeline; we then run it under the
// conservative all-remotable baseline and under each CaRDS remoting
// policy with the same local memory, and show what the compiler
// discovered and how much the policies buy.
package main

import (
	"fmt"
	"log"

	"cards/internal/core"
	"cards/internal/policy"
	"cards/internal/workloads"
)

func main() {
	cfg := workloads.TaxiConfig{Trips: 1 << 12, HotPasses: 6, Seed: 2014}

	// Compile once just to show the inventory.
	probe, err := core.Compile(workloads.BuildTaxi(cfg).Module, core.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CaRDS identified %d disjoint data structures:\n", len(probe.Analysis.Infos))
	for _, info := range probe.Analysis.Infos {
		fmt.Printf("  %-34s %-13s use=%-3d reach=%d\n",
			info.DS.Name(), info.Pattern, info.UseScore, info.ReachScore)
	}
	fmt.Println()

	ws := workloads.BuildTaxi(cfg).WorkingSetBytes
	pinned := ws / 2
	reserve := uint64(24 * 4096)
	fmt.Printf("working set %d KiB, local memory %d KiB pinned + %d KiB cache\n\n",
		ws/1024, pinned/1024, reserve/1024)

	var baseline uint64
	for _, pol := range policy.All() {
		c, err := core.Compile(workloads.BuildTaxi(cfg).Module, core.CompileOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rc := core.RunConfig{
			Policy: pol, K: 50, Seed: 1,
			PinnedBudget: pinned, RemotableBudget: reserve,
		}
		if pol == policy.AllRemotable {
			rc.PinnedBudget, rc.RemotableBudget = 0, pinned+reserve
		}
		res, err := c.Run(rc)
		if err != nil {
			log.Fatalf("%v: %v", pol, err)
		}
		if pol == policy.AllRemotable {
			baseline = res.Cycles
		}
		fmt.Printf("%-14s %.4fs  %5.2fx  guards=%-8d remote fetches=%-6d checksum=%#x\n",
			pol, res.Seconds, float64(baseline)/float64(res.Cycles),
			res.Runtime.GuardChecks, res.Runtime.RemoteFetches, res.MainResult)
	}
}
