// Cluster: the runtime against a REAL remote memory node over TCP — the
// paper's two-machine setup on loopback. If -server is given, the
// example connects to a running cardsd; otherwise it starts an
// in-process server so the example is self-contained. Either way the
// far tier is reached through the wire protocol: every eviction is a
// WRITE frame, every miss a READ frame.
package main

import (
	"flag"
	"fmt"
	"log"

	"cards"
	"cards/internal/remote"
)

func main() {
	server := flag.String("server", "", "cardsd address (empty: start in-process)")
	flag.Parse()

	addr := *server
	if addr == "" {
		srv := remote.NewServer()
		a, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addr = a
		fmt.Printf("started in-process far-memory node on %s\n", addr)
		defer func() {
			r, w := srv.Counts()
			fmt.Printf("server served %d reads, %d writes; %d objects resident\n",
				r, w, srv.Store.Len())
		}()
	}

	rt, err := cards.New(cards.Config{
		RemotableMemory: 32 << 10, // tiny cache: force wire traffic
		RemoteAddr:      addr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	const n = 32 * 1024
	a, err := cards.NewArray[int64](rt, "ledger", n, cards.Remotable)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := a.Set(i, int64(i)*3); err != nil {
			log.Fatal(err)
		}
	}
	// Read everything back — most of it now lives on the server.
	var sum int64
	for i := 0; i < n; i++ {
		v, err := a.Get(i)
		if err != nil {
			log.Fatal(err)
		}
		sum += v
	}
	want := int64(3) * n * (n - 1) / 2
	if sum != want {
		log.Fatalf("data corrupted over the wire: sum %d, want %d", sum, want)
	}

	st := rt.Stats()
	as := a.Stats()
	fmt.Printf("verified %d elements through the far tier (sum %d)\n", n, sum)
	fmt.Printf("misses=%d evictions=%d prefetch hits=%d, %.4f virtual seconds\n",
		as.Misses, st.Evictions, as.PrefetchHits, st.VirtualSeconds)
}
